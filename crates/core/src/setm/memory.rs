//! In-memory execution of Algorithm SETM.
//!
//! Follows Figure 4 step by step on columnar relations: the merge-scan
//! join walks `R_{k-1}` and `R_1` in `(trans_id, ...)` order, the counting
//! step is a single pass over the items-sorted `R'_k`, and the filter step
//! retains tuples of supported groups. The only liberties taken are
//! representational (struct-of-arrays instead of pages); every logical
//! step, including joining against the *unfiltered* `R_1`, matches the
//! paper.
//!
//! # Parallel sharded execution
//!
//! With `SetmOptions::threads > 1` the run is partitioned into contiguous
//! `trans_id` shards (see [`crate::setm::shard`]): each worker sorts,
//! merge-scans, and locally counts its own transactions under
//! [`std::thread::scope`]; the per-shard count relations are then merged
//! in one k-way pass ([`CountRelation::merge_sum_filter`]) to apply the
//! global support threshold, and each shard filters its own `R'_k` against
//! the merged `C_k`. Results — count relations and the `|R'_k|`/`|R_k|`/
//! `|C_k|` trace series — are identical to the sequential run for every
//! shard count; only wall-clock time changes.

use crate::constraints::CompiledConstraints;
use crate::data::{Dataset, Item, MiningParams, TransId};
use crate::pattern::{CountRelation, PatternRelation};
use crate::setm::plan::{JoinStrategy, LiveStats, PhysicalPlan, PlanMode, Planner, PlannerConfig};
use crate::setm::shard::{partition_by_weight, resolve_threads};
use crate::setm::{IterationTrace, SetmOptions, SetmResult};
use setm_obs::{NullSink, ObsEvent, ObsSink};
use std::collections::HashSet;
use std::ops::Range;

/// Mine `dataset` with default options.
pub fn mine(dataset: &Dataset, params: &MiningParams) -> SetmResult {
    mine_with(dataset, params, SetmOptions::default())
}

/// Mine `dataset`, exposing execution knobs, under the cost-based
/// auto-planner.
pub fn mine_with(dataset: &Dataset, params: &MiningParams, opts: SetmOptions) -> SetmResult {
    mine_planned(dataset, params, opts, PlanMode::Auto)
}

/// Mine `dataset` under an explicit plan-selection mode. The in-memory
/// execution honors the plan's `join`, `shards`, and `reuse_sort`
/// dimensions; `sort_buffer_pages` is recorded in the trace but has no
/// effect (there is no paged sorter here).
pub fn mine_planned(
    dataset: &Dataset,
    params: &MiningParams,
    opts: SetmOptions,
    mode: PlanMode,
) -> SetmResult {
    mine_observed(dataset, params, opts, mode, &NullSink)
}

/// [`mine_planned`] with a telemetry sink: each iteration's trace row is
/// reported the moment it is computed ([`ObsEvent::Iteration`]), and the
/// two sort phases around the loop body emit start/end events. The sink
/// only ever receives copies of already-computed numbers — the returned
/// result is identical to the unobserved run.
pub fn mine_observed(
    dataset: &Dataset,
    params: &MiningParams,
    opts: SetmOptions,
    mode: PlanMode,
    sink: &dyn ObsSink,
) -> SetmResult {
    mine_constrained(dataset, params, opts, mode, sink, &CompiledConstraints::none())
}

/// [`mine_observed`] with compiled [`crate::MiningConstraints`] pushed
/// into candidate generation (see `crate::constraints` — the dataset
/// must already be in mining space when items are required). With empty
/// constraints this *is* `mine_observed`: the unconstrained loops run
/// untouched and every `candidates_pruned` is zero.
pub fn mine_constrained(
    dataset: &Dataset,
    params: &MiningParams,
    opts: SetmOptions,
    mode: PlanMode,
    sink: &dyn ObsSink,
    cc: &CompiledConstraints,
) -> SetmResult {
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();

    // k = 1: sort R1 on item; C1 := generate counts from R1. Under
    // constraints, C1 is anchored/exclusion-filtered but SALES itself is
    // untouched (|R_1| below is the paper's unfiltered sales relation).
    let (c1, pruned1) = count_items_constrained(dataset, min_count, cc);
    trace.push(IterationTrace {
        k: 1,
        r_prime_tuples: dataset.n_rows(),
        r_tuples: dataset.n_rows(),
        r_kbytes: dataset.n_rows() as f64 * 8.0 / 1024.0,
        c_len: c1.len() as u64,
        page_accesses: 0,
        estimated_io_ms: 0.0,
        cache_hits: 0,
        pool_steals: 0,
        candidates_pruned: pruned1,
        plan: None,
    });
    sink.on_event(&ObsEvent::Iteration(trace[0].snapshot()));
    if !c1.is_empty() {
        counts.push(c1);
    }
    // `<= 1` (not `== 1`): a cap of 0 stops after C1 exactly like the
    // engine and SQL executions (the facade rejects 0 up front, but the
    // low-level paths must still agree with each other).
    if max_len <= 1 || n_txns == 0 {
        return SetmResult { counts, trace, n_transactions: n_txns, min_support_count: min_count };
    }

    // The SALES side of every merge-scan join. With the `filter_r1`
    // extension the join side drops infrequent items (results identical;
    // see SetmOptions). Membership is one O(1) hash probe per item.
    // Under constraints the keep set must come from the *unconstrained*
    // frequent items — the anchored C1 holds anchor items only, but free
    // extension positions still range over every frequent item.
    let sales: Vec<(TransId, Vec<Item>)> = if opts.filter_r1 {
        let keep: HashSet<Item> = if cc.is_empty() {
            counts.first().map(|c1| c1.iter().map(|(p, _)| p[0]).collect()).unwrap_or_default()
        } else {
            count_items(dataset, min_count).iter().map(|(p, _)| p[0]).collect()
        };
        dataset
            .transactions()
            .map(|(tid, items)| {
                let kept: Vec<Item> =
                    items.iter().copied().filter(|it| keep.contains(it)).collect();
                (tid, kept)
            })
            .filter(|(_, items)| !items.is_empty())
            .collect()
    } else {
        dataset.transactions().map(|(tid, items)| (tid, items.to_vec())).collect()
    };

    let planner = Planner::new(
        mode,
        PlannerConfig::with_max_shards(resolve_threads(opts.threads).min(sales.len().max(1))),
    );
    run_planned(&sales, &planner, min_count, max_len, &mut counts, &mut trace, sink, cc);

    SetmResult { counts, trace, n_transactions: n_txns, min_support_count: min_count }
}

/// The Figure 4 loop from k = 2, re-planned every iteration.
///
/// `R_{k-1}` is kept as one global relation; when an iteration's plan
/// asks for `shards > 1` it is partitioned by `trans_id` range on the
/// fly (phase 1: join + items-sort + local count per shard in parallel;
/// merge; phase 2: filter per shard in parallel). Because group counts
/// are algebraic and every shard holds whole transactions, the counts,
/// the filtered `R_k`, and the trace series are identical to the
/// one-shard run — `tests/plan_equivalence.rs` proves it for the full
/// forced-plan matrix.
#[allow(clippy::too_many_arguments)]
fn run_planned(
    sales: &[(TransId, Vec<Item>)],
    planner: &Planner,
    min_count: u64,
    max_len: usize,
    counts: &mut Vec<CountRelation>,
    trace: &mut Vec<IterationTrace>,
    sink: &dyn ObsSink,
    cc: &CompiledConstraints,
) {
    // R_1 doubles as the first "R_{k-1}": one tuple (tid, [item]) per row.
    let n_rows: usize = sales.iter().map(|(_, items)| items.len()).sum();
    let mut r_prev = PatternRelation::with_capacity(1, n_rows);
    for (tid, items) in sales {
        for &it in items {
            r_prev.push(*tid, &[it]);
        }
    }
    let max_txn_len = sales.iter().map(|(_, items)| items.len()).max().unwrap_or(0) as u64;
    let mut c_prev_len = counts.first().map(|c| c.len()).unwrap_or(0) as u64;
    // R_1 is built in transaction order, hence already tid-sorted.
    let mut tid_sorted = true;

    let mut k = 1usize;
    loop {
        k += 1;
        let stats = LiveStats {
            n_txns: sales.len() as u64,
            sales_tuples: n_rows as u64,
            max_txn_len,
            r_prev_tuples: r_prev.n_tuples() as u64,
            c_prev_len,
        };
        let plan = planner.plan_iteration(k, &stats);

        // sort R_{k-1} on (trans_id, item_1, .., item_{k-1}) — unless the
        // previous iteration's closing ORDER BY left it in that order and
        // the plan reuses it.
        if !tid_sorted {
            sink.on_event(&ObsEvent::PhaseStart { name: "sort_r_prev", k });
            r_prev.sort_by_tid_items();
            sink.on_event(&ObsEvent::PhaseEnd { name: "sort_r_prev", k });
        }

        let (c_k, mut r_k, r_prime_tuples, pruned) = if plan.shards <= 1 {
            iterate_one_shard(&r_prev, sales, plan.join, min_count, cc)
        } else {
            iterate_sharded(&r_prev, sales, &plan, min_count, cc)
        };

        trace.push(IterationTrace {
            k,
            r_prime_tuples,
            r_tuples: r_k.n_tuples() as u64,
            r_kbytes: r_k.kbytes(),
            c_len: c_k.len() as u64,
            page_accesses: 0,
            estimated_io_ms: 0.0,
            cache_hits: 0,
            pool_steals: 0,
            candidates_pruned: pruned,
            plan: Some(plan),
        });
        sink.on_event(&ObsEvent::Iteration(trace[trace.len() - 1].snapshot()));

        let done = r_k.is_empty() || k >= max_len;
        c_prev_len = c_k.len() as u64;
        if !c_k.is_empty() {
            counts.push(c_k);
        }
        if done {
            break;
        }
        // The paper's closing "ORDER BY trans_id, item_1, .., item_k":
        // performed here when the plan maintains the standing order for
        // the next loop-top sort to reuse, deferred to the next loop top
        // otherwise (the literal Figure 4 replay). Either way the join
        // sees the same deterministic order.
        if plan.reuse_sort {
            sink.on_event(&ObsEvent::PhaseStart { name: "sort_r_k", k });
            r_k.sort_by_tid_items();
            sink.on_event(&ObsEvent::PhaseEnd { name: "sort_r_k", k });
            tid_sorted = true;
        } else {
            tid_sorted = false;
        }
        r_prev = r_k;
    }
}

/// One unpartitioned iteration: join, items-sort, then the fused
/// count-and-filter pass.
fn iterate_one_shard(
    r_prev: &PatternRelation,
    sales: &[(TransId, Vec<Item>)],
    join: JoinStrategy,
    min_count: u64,
    cc: &CompiledConstraints,
) -> (CountRelation, PatternRelation, u64, u64) {
    let (mut r_prime, pruned) = extend(r_prev, 0..r_prev.n_tuples(), sales, join, cc);
    r_prime.sort_by_items();
    let (c_k, r_k) = count_and_filter(&r_prime, min_count);
    (c_k, r_k, r_prime.n_tuples() as u64, pruned)
}

/// One partitioned iteration: contiguous `trans_id` shards, counted
/// locally and merged under the global threshold.
fn iterate_sharded(
    r_prev: &PatternRelation,
    sales: &[(TransId, Vec<Item>)],
    plan: &PhysicalPlan,
    min_count: u64,
    cc: &CompiledConstraints,
) -> (CountRelation, PatternRelation, u64, u64) {
    let weights: Vec<usize> = sales.iter().map(|(_, items)| items.len()).collect();
    let ranges = partition_by_weight(&weights, plan.shards);

    // Map each shard's transaction range to its row range of the
    // tid-sorted `R_{k-1}`.
    let mut tasks: Vec<(Range<usize>, Range<usize>)> = Vec::with_capacity(ranges.len());
    let mut row_start = 0usize;
    for range in &ranges {
        let row_end = if range.end < sales.len() {
            let boundary = sales[range.end].0;
            upper_row_bound(r_prev, row_start, boundary)
        } else {
            r_prev.n_tuples()
        };
        tasks.push((range.clone(), row_start..row_end));
        row_start = row_end;
    }

    // Phase 1 (parallel): join + items-sort + local count per shard.
    let mut shards: Vec<(PatternRelation, CountRelation, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = tasks
            .iter()
            .map(|(txn_range, row_range)| {
                let join = plan.join;
                s.spawn(move || {
                    let (mut r_prime, pruned) =
                        extend(r_prev, row_range.clone(), &sales[txn_range.clone()], join, cc);
                    r_prime.sort_by_items();
                    let local = count_groups(&r_prime);
                    (r_prime, local, pruned)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("SETM shard worker panicked")).collect()
    });

    // Merge the sorted per-shard counts and apply the global support
    // threshold in one k-way pass.
    let locals: Vec<CountRelation> =
        shards.iter_mut().map(|(_, c, _)| std::mem::replace(c, CountRelation::new(1))).collect();
    let c_k = CountRelation::merge_sum_filter(&locals, min_count);
    let r_prime_tuples: u64 = shards.iter().map(|(r, _, _)| r.n_tuples() as u64).sum();
    let pruned: u64 = shards.iter().map(|(_, _, p)| *p).sum();

    // Phase 2 (parallel): filter each shard's R'_k against the global
    // C_k, then concatenate in shard order (restoring one relation; the
    // next loop-top or closing sort re-establishes the canonical order).
    let parts: Vec<PatternRelation> = std::thread::scope(|s| {
        let c_ref = &c_k;
        let handles: Vec<_> = shards
            .iter()
            .map(|(r_prime, _, _)| s.spawn(move || filter_supported(r_prime, c_ref)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("SETM shard worker panicked")).collect()
    });
    let total: usize = parts.iter().map(|p| p.n_tuples()).sum();
    let mut r_k = PatternRelation::with_capacity(r_prev.k() + 1, total);
    for part in &parts {
        for (tid, items) in part.iter() {
            r_k.push(tid, items);
        }
    }
    (c_k, r_k, r_prime_tuples, pruned)
}

/// First row of the tid-sorted `r_prev` at or after `boundary`, searching
/// from `from`.
fn upper_row_bound(r_prev: &PatternRelation, from: usize, boundary: TransId) -> usize {
    let mut lo = from;
    let mut hi = r_prev.n_tuples();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if r_prev.row(mid).0 < boundary {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The extension join under either access path. Both walk the `R_{k-1}`
/// rows in order and emit extensions in ascending item order, so the
/// output rows and their order are identical — the plan-equivalence
/// contract. Returns the relation plus the number of candidate pairs
/// rejected by constraint pushdown (always 0 unconstrained; the
/// unconstrained loops run untouched).
fn extend(
    r_prev: &PatternRelation,
    rows: Range<usize>,
    sales: &[(TransId, Vec<Item>)],
    join: JoinStrategy,
    cc: &CompiledConstraints,
) -> (PatternRelation, u64) {
    if cc.is_empty() {
        let out = match join {
            JoinStrategy::MergeScan => merge_scan_extend(r_prev, rows, sales),
            JoinStrategy::NestedLoop => nested_loop_extend(r_prev, rows, sales),
        };
        (out, 0)
    } else {
        match join {
            JoinStrategy::MergeScan => merge_scan_extend_constrained(r_prev, rows, sales, cc),
            JoinStrategy::NestedLoop => nested_loop_extend_constrained(r_prev, rows, sales, cc),
        }
    }
}

/// C1 under compiled constraints: like [`count_items`], but only items
/// the constraints allow at pattern position 0 are counted — with an
/// anchor that is the first anchor item alone, otherwise every
/// non-excluded item. Returns the count relation plus the number of
/// `SALES` rows whose item was rejected (the k = 1 `candidates_pruned`).
pub fn count_items_constrained(
    dataset: &Dataset,
    min_count: u64,
    cc: &CompiledConstraints,
) -> (CountRelation, u64) {
    if cc.is_empty() {
        return (count_items(dataset, min_count), 0);
    }
    let mut items: Vec<Item> = Vec::with_capacity(dataset.items().len());
    let mut pruned = 0u64;
    for &it in dataset.items() {
        if cc.allows_at(0, it) {
            items.push(it);
        } else {
            pruned += 1;
        }
    }
    items.sort_unstable();
    let mut c1 = CountRelation::new(1);
    let mut i = 0;
    while i < items.len() {
        let item = items[i];
        let mut j = i + 1;
        while j < items.len() && items[j] == item {
            j += 1;
        }
        let count = (j - i) as u64;
        if count >= min_count {
            c1.push(&[item], count);
        }
        i = j;
    }
    (c1, pruned)
}

/// C1: per-item transaction counts with the minimum-support filter
/// ("SELECT item, COUNT(*) FROM SALES GROUP BY item HAVING COUNT(*) >= s").
pub fn count_items(dataset: &Dataset, min_count: u64) -> CountRelation {
    let mut items: Vec<Item> = dataset.items().to_vec();
    items.sort_unstable();
    let mut c1 = CountRelation::new(1);
    let mut i = 0;
    while i < items.len() {
        let item = items[i];
        let mut j = i + 1;
        while j < items.len() && items[j] == item {
            j += 1;
        }
        let count = (j - i) as u64;
        if count >= min_count {
            c1.push(&[item], count);
        }
        i = j;
    }
    c1
}

/// The merge-scan join of Figure 4: both inputs ordered by `trans_id`;
/// within each transaction, extend every `R_{k-1}` tuple (of the given
/// row range) with every sales item greater than its last item
/// (preserving lexicographic patterns).
pub fn merge_scan_extend(
    r_prev: &PatternRelation,
    rows: Range<usize>,
    sales: &[(TransId, Vec<Item>)],
) -> PatternRelation {
    let k_prev = r_prev.k();
    let mut out = PatternRelation::with_capacity(k_prev + 1, rows.len());
    let mut buf: Vec<Item> = vec![0; k_prev + 1];
    let mut s = 0usize; // cursor into sales (sorted by tid)
    let mut row = rows.start;
    let n = rows.end;
    while row < n {
        let (tid, _) = r_prev.row(row);
        // Advance the sales cursor to this transaction.
        while s < sales.len() && sales[s].0 < tid {
            s += 1;
        }
        if s >= sales.len() {
            break;
        }
        if sales[s].0 > tid {
            // Transaction vanished from the (possibly filtered) sales
            // side; skip its R_{k-1} group.
            while row < n && r_prev.row(row).0 == tid {
                row += 1;
            }
            continue;
        }
        let items = &sales[s].1;
        // Process the whole R_{k-1} group for this transaction.
        while row < n {
            let (t, pattern) = r_prev.row(row);
            if t != tid {
                break;
            }
            let last = pattern[k_prev - 1];
            // Items are sorted within a transaction: binary search for the
            // first strictly greater than the pattern's last item.
            let start = items.partition_point(|&it| it <= last);
            for &ext in &items[start..] {
                buf[..k_prev].copy_from_slice(pattern);
                buf[k_prev] = ext;
                out.push(tid, &buf);
            }
            row += 1;
        }
    }
    out
}

/// [`merge_scan_extend`] with the compiled constraints evaluated on
/// every candidate pair that passes the paper's `q.item > p.item_{k-1}`
/// join predicate. Two checks exist:
///
/// * the *extension* item must be allowed at pattern position `k_prev`
///   (the anchor item for anchored positions, any non-excluded item for
///   free ones);
/// * at k = 2 only, the *prefix* side needs the position-0 check too,
///   because `R_1` is the paper's unfiltered sales relation — every
///   later `R_{k-1}` was filtered against the anchored `C_{k-1}` and is
///   clean by induction.
///
/// The second return value counts the rejected pairs (a rejected k = 2
/// prefix charges all of its would-be extensions).
fn merge_scan_extend_constrained(
    r_prev: &PatternRelation,
    rows: Range<usize>,
    sales: &[(TransId, Vec<Item>)],
    cc: &CompiledConstraints,
) -> (PatternRelation, u64) {
    let k_prev = r_prev.k();
    let check_prefix = k_prev == 1;
    let mut pruned = 0u64;
    let mut out = PatternRelation::with_capacity(k_prev + 1, rows.len());
    let mut buf: Vec<Item> = vec![0; k_prev + 1];
    let mut s = 0usize;
    let mut row = rows.start;
    let n = rows.end;
    while row < n {
        let (tid, _) = r_prev.row(row);
        while s < sales.len() && sales[s].0 < tid {
            s += 1;
        }
        if s >= sales.len() {
            break;
        }
        if sales[s].0 > tid {
            while row < n && r_prev.row(row).0 == tid {
                row += 1;
            }
            continue;
        }
        let items = &sales[s].1;
        while row < n {
            let (t, pattern) = r_prev.row(row);
            if t != tid {
                break;
            }
            let last = pattern[k_prev - 1];
            let start = items.partition_point(|&it| it <= last);
            if check_prefix && !cc.allows_at(0, pattern[0]) {
                // The whole group of pairs through this prefix is pruned.
                pruned += (items.len() - start) as u64;
                row += 1;
                continue;
            }
            for &ext in &items[start..] {
                if cc.allows_at(k_prev, ext) {
                    buf[..k_prev].copy_from_slice(pattern);
                    buf[k_prev] = ext;
                    out.push(tid, &buf);
                } else {
                    pruned += 1;
                }
            }
            row += 1;
        }
    }
    (out, pruned)
}

/// The nested-loop access path: one index probe per `R_{k-1}` tuple
/// instead of a full `SALES` scan. The sorted transaction vector *is*
/// the `(trans_id, item)` index here — `binary_search_by_key` plays the
/// B+-tree descent. Probing in `R_{k-1}` row order with extensions
/// emitted in ascending item order produces the identical `R'_k` rows,
/// in the identical order, as [`merge_scan_extend`].
fn nested_loop_extend(
    r_prev: &PatternRelation,
    rows: Range<usize>,
    sales: &[(TransId, Vec<Item>)],
) -> PatternRelation {
    let k_prev = r_prev.k();
    let mut out = PatternRelation::with_capacity(k_prev + 1, rows.len());
    let mut buf: Vec<Item> = vec![0; k_prev + 1];
    let mut cached: Option<(TransId, usize)> = None;
    for row in rows {
        let (tid, pattern) = r_prev.row(row);
        // R_{k-1} rows of one transaction are adjacent; probe once per
        // transaction.
        let hit = match cached {
            Some((t, s)) if t == tid => Some(s),
            _ => match sales.binary_search_by_key(&tid, |(t, _)| *t) {
                Ok(s) => {
                    cached = Some((tid, s));
                    Some(s)
                }
                Err(_) => {
                    // Transaction vanished from the (possibly filtered)
                    // sales side.
                    cached = None;
                    None
                }
            },
        };
        let Some(s) = hit else { continue };
        let items = &sales[s].1;
        let last = pattern[k_prev - 1];
        let start = items.partition_point(|&it| it <= last);
        for &ext in &items[start..] {
            buf[..k_prev].copy_from_slice(pattern);
            buf[k_prev] = ext;
            out.push(tid, &buf);
        }
    }
    out
}

/// [`nested_loop_extend`] under compiled constraints — same checks and
/// pruned-pair accounting as [`merge_scan_extend_constrained`], so both
/// access paths report identical `candidates_pruned`.
fn nested_loop_extend_constrained(
    r_prev: &PatternRelation,
    rows: Range<usize>,
    sales: &[(TransId, Vec<Item>)],
    cc: &CompiledConstraints,
) -> (PatternRelation, u64) {
    let k_prev = r_prev.k();
    let check_prefix = k_prev == 1;
    let mut pruned = 0u64;
    let mut out = PatternRelation::with_capacity(k_prev + 1, rows.len());
    let mut buf: Vec<Item> = vec![0; k_prev + 1];
    let mut cached: Option<(TransId, usize)> = None;
    for row in rows {
        let (tid, pattern) = r_prev.row(row);
        let hit = match cached {
            Some((t, s)) if t == tid => Some(s),
            _ => match sales.binary_search_by_key(&tid, |(t, _)| *t) {
                Ok(s) => {
                    cached = Some((tid, s));
                    Some(s)
                }
                Err(_) => {
                    cached = None;
                    None
                }
            },
        };
        let Some(s) = hit else { continue };
        let items = &sales[s].1;
        let last = pattern[k_prev - 1];
        let start = items.partition_point(|&it| it <= last);
        if check_prefix && !cc.allows_at(0, pattern[0]) {
            pruned += (items.len() - start) as u64;
            continue;
        }
        for &ext in &items[start..] {
            if cc.allows_at(k_prev, ext) {
                buf[..k_prev].copy_from_slice(pattern);
                buf[k_prev] = ext;
                out.push(tid, &buf);
            } else {
                pruned += 1;
            }
        }
    }
    (out, pruned)
}

/// One pass over the items-sorted `R'_k`: emit `C_k` groups meeting the
/// minimum support and copy their tuples into `R_k`. Group boundaries are
/// found by slice comparison against the group's first row — no per-group
/// allocation.
fn count_and_filter(r_prime: &PatternRelation, min_count: u64) -> (CountRelation, PatternRelation) {
    let k = r_prime.k();
    let n = r_prime.n_tuples();
    let mut c = CountRelation::new(k);
    let mut r = PatternRelation::new(k);
    let mut i = 0usize;
    while i < n {
        let pattern = r_prime.row(i).1;
        let mut j = i + 1;
        while j < n && r_prime.row(j).1 == pattern {
            j += 1;
        }
        let count = (j - i) as u64;
        if count >= min_count {
            c.push(pattern, count);
            for row in i..j {
                let (tid, items) = r_prime.row(row);
                r.push(tid, items);
            }
        }
        i = j;
    }
    (c, r)
}

/// Count every group of an items-sorted `R'_k` with no support filter —
/// the shard-local half of the parallel counting step (the threshold can
/// only be applied to the merged global counts).
pub fn count_groups(r_prime: &PatternRelation) -> CountRelation {
    let k = r_prime.k();
    let n = r_prime.n_tuples();
    let mut c = CountRelation::new(k);
    let mut i = 0usize;
    while i < n {
        let pattern = r_prime.row(i).1;
        let mut j = i + 1;
        while j < n && r_prime.row(j).1 == pattern {
            j += 1;
        }
        c.push(pattern, (j - i) as u64);
        i = j;
    }
    c
}

/// Retain the tuples of `r_prime` whose pattern appears in `c_k`. Both
/// sides are pattern-sorted, so membership is one monotone merge cursor —
/// O(1) amortized per group, no binary searches.
pub fn filter_supported(r_prime: &PatternRelation, c_k: &CountRelation) -> PatternRelation {
    let k = r_prime.k();
    let n = r_prime.n_tuples();
    let mut out = PatternRelation::new(k);
    let mut ci = 0usize;
    let mut i = 0usize;
    while i < n {
        let pattern = r_prime.row(i).1;
        let mut j = i + 1;
        while j < n && r_prime.row(j).1 == pattern {
            j += 1;
        }
        while ci < c_k.len() && c_k.pattern_at(ci) < pattern {
            ci += 1;
        }
        if ci < c_k.len() && c_k.pattern_at(ci) == pattern {
            for row in i..j {
                let (tid, items) = r_prime.row(row);
                out.push(tid, items);
            }
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{MinSupport, MiningParams};

    fn tiny() -> Dataset {
        // 4 transactions over items {1,2,3,4}.
        Dataset::from_transactions([
            (1, [1u32, 2, 3].as_slice()),
            (2, [1, 2].as_slice()),
            (3, [1, 2, 3].as_slice()),
            (4, [2, 4].as_slice()),
        ])
    }

    #[test]
    fn c1_counts_and_filters() {
        let d = tiny();
        let c1 = count_items(&d, 2);
        assert_eq!(c1.get(&[1]), Some(3));
        assert_eq!(c1.get(&[2]), Some(4));
        assert_eq!(c1.get(&[3]), Some(2));
        assert_eq!(c1.get(&[4]), None, "support 1 < 2 is filtered");
    }

    #[test]
    fn full_run_matches_brute_force() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5);
        let r = mine(&d, &params);
        // Every reported count must equal the brute-force oracle.
        for (pattern, count) in r.frequent_itemsets() {
            assert_eq!(count, d.support_of(&pattern), "pattern {pattern:?}");
            assert!(count >= 2);
        }
        // And every frequent pattern must be reported.
        assert_eq!(r.c(2).unwrap().get(&[1, 2]), Some(3));
        assert_eq!(r.c(2).unwrap().get(&[1, 3]), Some(2));
        assert_eq!(r.c(2).unwrap().get(&[2, 3]), Some(2));
        assert_eq!(r.c(3).unwrap().get(&[1, 2, 3]), Some(2));
        assert_eq!(r.max_pattern_len(), 3);
    }

    #[test]
    fn trace_records_every_iteration_with_final_zero() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5);
        let r = mine(&d, &params);
        assert_eq!(r.trace[0].k, 1);
        assert_eq!(r.trace[0].r_tuples, d.n_rows());
        let last = r.trace.last().unwrap();
        assert_eq!(last.k, 4);
        assert_eq!(last.r_tuples, 0, "loop runs until R_k = {{}}");
        assert_eq!(last.c_len, 0);
    }

    #[test]
    fn filter_r1_option_does_not_change_results() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5);
        let base = mine_with(&d, &params, SetmOptions { filter_r1: false, ..Default::default() });
        let filt = mine_with(&d, &params, SetmOptions { filter_r1: true, ..Default::default() });
        assert_eq!(base.frequent_itemsets(), filt.frequent_itemsets());
        // But the unfiltered run generates at least as many R'_2 tuples.
        assert!(base.trace[1].r_prime_tuples >= filt.trace[1].r_prime_tuples);
    }

    #[test]
    fn max_pattern_len_caps_the_loop() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5).with_max_len(2);
        let r = mine(&d, &params);
        assert_eq!(r.max_pattern_len(), 2);
        assert_eq!(r.trace.last().unwrap().k, 2);
    }

    /// The facade rejects a cap of 0, but the low-level executions must
    /// still agree with each other if handed one: stop after C1, exactly
    /// like the engine and SQL loops' `max_len > 1` guard.
    #[test]
    fn max_pattern_len_zero_stops_after_c1_like_other_executions() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5).with_max_len(0);
        let r = mine(&d, &params);
        assert_eq!(r.max_pattern_len(), 1, "C1 only, no k=2 iteration");
        assert_eq!(r.trace.last().unwrap().k, 1);
        let eng = crate::setm::engine::mine_with(
            &d,
            &params,
            crate::setm::engine::EngineConfig::default(),
            1,
        )
        .unwrap();
        assert_eq!(eng.result.frequent_itemsets(), r.frequent_itemsets());
        let sql = crate::setm::sql::mine_with(&d, &params, 1).unwrap();
        assert_eq!(sql.result.frequent_itemsets(), r.frequent_itemsets());
    }

    #[test]
    fn unfiltered_r1_generates_extensions_through_infrequent_prefixes() {
        // Transactions where an infrequent item sits between frequent ones:
        // the paper's unfiltered join must still consider it in R'_2, then
        // drop it at the C_2 filter.
        let d = Dataset::from_transactions([
            (1, [1u32, 5, 9].as_slice()),
            (2, [1, 9].as_slice()),
            (3, [1, 9].as_slice()),
        ]);
        let params = MiningParams::new(MinSupport::Count(3), 0.5);
        let r = mine(&d, &params);
        assert_eq!(r.c(1).unwrap().len(), 2); // {1}, {9}
        assert_eq!(r.c(2).unwrap().get(&[1, 9]), Some(3));
        assert!(r.c(2).unwrap().get(&[1, 5]).is_none());
        // R'_2 counted the pairs through item 5 too: (1,5), (5,9), (1,9)x3.
        assert_eq!(r.trace[1].r_prime_tuples, 5);
    }

    #[test]
    fn empty_dataset_terminates_immediately() {
        let d = Dataset::from_pairs(std::iter::empty());
        let params = MiningParams::new(MinSupport::Count(1), 0.5);
        let r = mine(&d, &params);
        assert_eq!(r.max_pattern_len(), 0);
        assert_eq!(r.trace.len(), 1);
    }

    #[test]
    fn high_min_support_stops_after_c1() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(4), 0.5);
        let r = mine(&d, &params);
        // Only item 2 appears in all four transactions.
        assert_eq!(r.c(1).unwrap().to_vec(), vec![(crate::itemvec::ItemVec::from([2]), 4)]);
        assert!(r.c(2).is_none());
    }

    #[test]
    fn single_transaction_dataset() {
        let d = Dataset::from_transactions([(7, [1u32, 2, 3].as_slice())]);
        let params = MiningParams::new(MinSupport::Count(1), 0.5);
        let r = mine(&d, &params);
        assert_eq!(r.max_pattern_len(), 3);
        assert_eq!(r.c(3).unwrap().get(&[1, 2, 3]), Some(1));
        // R'_2 holds all 3 pairs, R'_3 all single extension chains.
        assert_eq!(r.trace[1].r_prime_tuples, 3);
    }

    /// Sequential and sharded runs must agree exactly — itemsets, counts,
    /// and the |R'_k| / |R_k| / |C_k| trace series — for every shard count.
    #[test]
    fn sharded_runs_match_sequential_exactly() {
        // A dataset rich enough to run 3+ iterations with uneven shards.
        let txns: Vec<(u32, Vec<u32>)> = (0..60u32)
            .map(|t| {
                let mut items = vec![1, 2, 3];
                if t % 2 == 0 {
                    items.push(4 + t % 5);
                }
                if t % 7 == 0 {
                    items.extend([20, 21, 22]);
                }
                (t + 1, items)
            })
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.1), 0.5);
        let seq = mine_with(&d, &params, SetmOptions { threads: 1, ..Default::default() });
        for threads in [2usize, 3, 4, 7, 16, 64] {
            let par = mine_with(&d, &params, SetmOptions { threads, ..Default::default() });
            assert_eq!(par.frequent_itemsets(), seq.frequent_itemsets(), "threads={threads}");
            assert_eq!(par.trace.len(), seq.trace.len(), "threads={threads}");
            for (a, b) in seq.trace.iter().zip(par.trace.iter()) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.r_prime_tuples, b.r_prime_tuples, "threads={threads} k={}", a.k);
                assert_eq!(a.r_tuples, b.r_tuples, "threads={threads} k={}", a.k);
                assert_eq!(a.c_len, b.c_len, "threads={threads} k={}", a.k);
                assert_eq!(a.r_kbytes, b.r_kbytes, "threads={threads} k={}", a.k);
            }
        }
    }

    #[test]
    fn sharded_run_with_filter_r1_matches_too() {
        let txns: Vec<(u32, Vec<u32>)> =
            (0..30u32).map(|t| (t + 1, vec![1, 2, 3 + t % 9])).collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Count(4), 0.5);
        let seq = mine_with(&d, &params, SetmOptions { filter_r1: true, threads: 1 });
        let par = mine_with(&d, &params, SetmOptions { filter_r1: true, threads: 4 });
        assert_eq!(par.frequent_itemsets(), seq.frequent_itemsets());
    }

    /// Every legal plan shape must reproduce the auto-planned run
    /// exactly (the full matrix runs in `tests/plan_equivalence.rs`).
    #[test]
    fn forced_plans_match_auto() {
        use crate::setm::plan::{JoinStrategy, PhysicalPlan, PlanMode};
        let txns: Vec<(u32, Vec<u32>)> = (0..40u32)
            .map(|t| {
                let mut items = vec![1, 2, 3];
                if t % 3 == 0 {
                    items.push(4 + t % 4);
                }
                (t + 1, items)
            })
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Count(5), 0.5);
        let auto = mine_with(&d, &params, SetmOptions::default());
        for join in [JoinStrategy::MergeScan, JoinStrategy::NestedLoop] {
            for reuse_sort in [true, false] {
                for shards in [1usize, 3] {
                    let plan =
                        PhysicalPlan { join, reuse_sort, shards, sort_buffer_pages: 256 };
                    let forced = mine_planned(
                        &d,
                        &params,
                        SetmOptions::default(),
                        PlanMode::Forced(plan),
                    );
                    assert_eq!(
                        forced.frequent_itemsets(),
                        auto.frequent_itemsets(),
                        "plan {plan}"
                    );
                    assert_eq!(forced.trace.len(), auto.trace.len(), "plan {plan}");
                    for (a, b) in auto.trace.iter().zip(forced.trace.iter()) {
                        assert_eq!(
                            (a.r_prime_tuples, a.r_tuples, a.c_len),
                            (b.r_prime_tuples, b.r_tuples, b.c_len),
                            "plan {plan} k={}",
                            a.k
                        );
                    }
                    // The executed plan is recorded on every k >= 2 row.
                    for t in &forced.trace[1..] {
                        let got = t.plan.expect("planned iteration records its plan");
                        assert_eq!(got.join, join);
                    }
                }
            }
        }
    }

    #[test]
    fn more_shards_than_transactions_is_safe() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5);
        let seq = mine_with(&d, &params, SetmOptions { threads: 1, ..Default::default() });
        let par = mine_with(&d, &params, SetmOptions { threads: 32, ..Default::default() });
        assert_eq!(par.frequent_itemsets(), seq.frequent_itemsets());
    }

    #[test]
    fn filter_supported_uses_monotone_cursor() {
        let mut r_prime = PatternRelation::new(2);
        // Items-sorted groups: [1,2]x2, [1,3]x1, [2,9]x3.
        r_prime.push(10, &[1, 2]);
        r_prime.push(11, &[1, 2]);
        r_prime.push(10, &[1, 3]);
        r_prime.push(10, &[2, 9]);
        r_prime.push(12, &[2, 9]);
        r_prime.push(13, &[2, 9]);
        let mut c = CountRelation::new(2);
        c.push(&[1, 2], 2);
        c.push(&[2, 9], 3);
        let kept = filter_supported(&r_prime, &c);
        assert_eq!(kept.n_tuples(), 5, "the {{1,3}} group is dropped");
        assert_eq!(count_groups(&kept).len(), 2);
    }
}
