//! In-memory execution of Algorithm SETM.
//!
//! Follows Figure 4 step by step on columnar relations: the merge-scan
//! join walks `R_{k-1}` and `R_1` in `(trans_id, ...)` order, the counting
//! step is a single pass over the items-sorted `R'_k`, and the filter step
//! retains tuples of supported groups. The only liberties taken are
//! representational (struct-of-arrays instead of pages); every logical
//! step, including joining against the *unfiltered* `R_1`, matches the
//! paper.

use crate::data::{Dataset, Item, MiningParams};
use crate::pattern::{CountRelation, PatternRelation};
use crate::setm::{IterationTrace, SetmOptions, SetmResult};

/// Mine `dataset` with default options.
pub fn mine(dataset: &Dataset, params: &MiningParams) -> SetmResult {
    mine_with(dataset, params, SetmOptions::default())
}

/// Mine `dataset`, exposing execution knobs.
pub fn mine_with(dataset: &Dataset, params: &MiningParams, opts: SetmOptions) -> SetmResult {
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();

    // k = 1: sort R1 on item; C1 := generate counts from R1.
    let c1 = count_items(dataset, min_count);
    trace.push(IterationTrace {
        k: 1,
        r_prime_tuples: dataset.n_rows(),
        r_tuples: dataset.n_rows(),
        r_kbytes: dataset.n_rows() as f64 * 8.0 / 1024.0,
        c_len: c1.len() as u64,
        page_accesses: 0,
        estimated_io_ms: 0.0,
    });
    let c1_empty = c1.is_empty();
    if !c1_empty {
        counts.push(c1);
    }
    if max_len == 1 || n_txns == 0 {
        return SetmResult { counts, trace, n_transactions: n_txns, min_support_count: min_count };
    }

    // The SALES side of every merge-scan join. With the `filter_r1`
    // extension the join side drops infrequent items (results identical;
    // see SetmOptions).
    let sales: Vec<(u32, Vec<Item>)> = if opts.filter_r1 {
        let c1 = counts.first();
        dataset
            .transactions()
            .map(|(tid, items)| {
                let kept: Vec<Item> = items
                    .iter()
                    .copied()
                    .filter(|&it| c1.is_some_and(|c| c.contains(&[it])))
                    .collect();
                (tid, kept)
            })
            .filter(|(_, items)| !items.is_empty())
            .collect()
    } else {
        dataset.transactions().map(|(tid, items)| (tid, items.to_vec())).collect()
    };

    // R_1 doubles as the first "R_{k-1}": one tuple (tid, [item]) per row.
    let mut r_prev = PatternRelation::with_capacity(1, dataset.n_rows() as usize);
    for (tid, items) in &sales {
        for &it in items {
            r_prev.push(*tid, &[it]);
        }
    }

    let mut k = 1usize;
    loop {
        k += 1;
        // sort R_{k-1} on (trans_id, item_1, .., item_{k-1}). The filter
        // step below leaves R_k sorted by items, so this restores the join
        // order, exactly as the paper's loop does.
        r_prev.sort_by_tid_items();

        // R'_k := merge-scan R_{k-1}, R_1 (q.item > p.item_{k-1}).
        let mut r_prime = merge_scan_extend(&r_prev, &sales);

        // sort R'_k on (item_1, .., item_k); C_k := generate counts;
        // R_k := filter R'_k to retain supported patterns.
        r_prime.sort_by_items();
        let (c_k, r_k) = count_and_filter(&r_prime, min_count);

        trace.push(IterationTrace {
            k,
            r_prime_tuples: r_prime.n_tuples() as u64,
            r_tuples: r_k.n_tuples() as u64,
            r_kbytes: r_k.kbytes(),
            c_len: c_k.len() as u64,
            page_accesses: 0,
            estimated_io_ms: 0.0,
        });

        let done = r_k.is_empty() || k >= max_len;
        if !c_k.is_empty() {
            counts.push(c_k);
        }
        if done {
            break;
        }
        r_prev = r_k;
    }

    SetmResult { counts, trace, n_transactions: n_txns, min_support_count: min_count }
}

/// C1: per-item transaction counts with the minimum-support filter
/// ("SELECT item, COUNT(*) FROM SALES GROUP BY item HAVING COUNT(*) >= s").
fn count_items(dataset: &Dataset, min_count: u64) -> CountRelation {
    let mut items: Vec<Item> = dataset.items().to_vec();
    items.sort_unstable();
    let mut c1 = CountRelation::new(1);
    let mut i = 0;
    while i < items.len() {
        let item = items[i];
        let mut j = i + 1;
        while j < items.len() && items[j] == item {
            j += 1;
        }
        let count = (j - i) as u64;
        if count >= min_count {
            c1.push(&[item], count);
        }
        i = j;
    }
    c1
}

/// The merge-scan join of Figure 4: both inputs ordered by `trans_id`;
/// within each transaction, extend every `R_{k-1}` tuple with every sales
/// item greater than its last item (preserving lexicographic patterns).
fn merge_scan_extend(r_prev: &PatternRelation, sales: &[(u32, Vec<Item>)]) -> PatternRelation {
    let k_prev = r_prev.k();
    let mut out = PatternRelation::with_capacity(k_prev + 1, r_prev.n_tuples());
    let mut buf: Vec<Item> = vec![0; k_prev + 1];
    let mut s = 0usize; // cursor into sales (sorted by tid)
    let mut row = 0usize;
    let n = r_prev.n_tuples();
    while row < n {
        let (tid, _) = r_prev.row(row);
        // Advance the sales cursor to this transaction.
        while s < sales.len() && sales[s].0 < tid {
            s += 1;
        }
        if s >= sales.len() {
            break;
        }
        if sales[s].0 > tid {
            // Transaction vanished from the (possibly filtered) sales
            // side; skip its R_{k-1} group.
            while row < n && r_prev.row(row).0 == tid {
                row += 1;
            }
            continue;
        }
        let items = &sales[s].1;
        // Process the whole R_{k-1} group for this transaction.
        while row < n {
            let (t, pattern) = r_prev.row(row);
            if t != tid {
                break;
            }
            let last = pattern[k_prev - 1];
            // Items are sorted within a transaction: binary search for the
            // first strictly greater than the pattern's last item.
            let start = items.partition_point(|&it| it <= last);
            for &ext in &items[start..] {
                buf[..k_prev].copy_from_slice(pattern);
                buf[k_prev] = ext;
                out.push(tid, &buf);
            }
            row += 1;
        }
    }
    out
}

/// One pass over the items-sorted `R'_k`: emit `C_k` groups meeting the
/// minimum support and copy their tuples into `R_k`.
fn count_and_filter(r_prime: &PatternRelation, min_count: u64) -> (CountRelation, PatternRelation) {
    let k = r_prime.k();
    let n = r_prime.n_tuples();
    let mut c = CountRelation::new(k);
    let mut r = PatternRelation::new(k);
    let mut i = 0usize;
    while i < n {
        let (_, pattern) = r_prime.row(i);
        let pattern = pattern.to_vec();
        let mut j = i + 1;
        while j < n && r_prime.row(j).1 == pattern.as_slice() {
            j += 1;
        }
        let count = (j - i) as u64;
        if count >= min_count {
            c.push(&pattern, count);
            for row in i..j {
                let (tid, items) = r_prime.row(row);
                r.push(tid, items);
            }
        }
        i = j;
    }
    (c, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{MinSupport, MiningParams};

    fn tiny() -> Dataset {
        // 4 transactions over items {1,2,3,4}.
        Dataset::from_transactions([
            (1, [1u32, 2, 3].as_slice()),
            (2, [1, 2].as_slice()),
            (3, [1, 2, 3].as_slice()),
            (4, [2, 4].as_slice()),
        ])
    }

    #[test]
    fn c1_counts_and_filters() {
        let d = tiny();
        let c1 = count_items(&d, 2);
        assert_eq!(c1.get(&[1]), Some(3));
        assert_eq!(c1.get(&[2]), Some(4));
        assert_eq!(c1.get(&[3]), Some(2));
        assert_eq!(c1.get(&[4]), None, "support 1 < 2 is filtered");
    }

    #[test]
    fn full_run_matches_brute_force() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5);
        let r = mine(&d, &params);
        // Every reported count must equal the brute-force oracle.
        for (pattern, count) in r.frequent_itemsets() {
            assert_eq!(count, d.support_of(&pattern), "pattern {pattern:?}");
            assert!(count >= 2);
        }
        // And every frequent pattern must be reported.
        assert_eq!(r.c(2).unwrap().get(&[1, 2]), Some(3));
        assert_eq!(r.c(2).unwrap().get(&[1, 3]), Some(2));
        assert_eq!(r.c(2).unwrap().get(&[2, 3]), Some(2));
        assert_eq!(r.c(3).unwrap().get(&[1, 2, 3]), Some(2));
        assert_eq!(r.max_pattern_len(), 3);
    }

    #[test]
    fn trace_records_every_iteration_with_final_zero() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5);
        let r = mine(&d, &params);
        assert_eq!(r.trace[0].k, 1);
        assert_eq!(r.trace[0].r_tuples, d.n_rows());
        let last = r.trace.last().unwrap();
        assert_eq!(last.k, 4);
        assert_eq!(last.r_tuples, 0, "loop runs until R_k = {{}}");
        assert_eq!(last.c_len, 0);
    }

    #[test]
    fn filter_r1_option_does_not_change_results() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5);
        let base = mine_with(&d, &params, SetmOptions { filter_r1: false });
        let filt = mine_with(&d, &params, SetmOptions { filter_r1: true });
        assert_eq!(base.frequent_itemsets(), filt.frequent_itemsets());
        // But the unfiltered run generates at least as many R'_2 tuples.
        assert!(base.trace[1].r_prime_tuples >= filt.trace[1].r_prime_tuples);
    }

    #[test]
    fn max_pattern_len_caps_the_loop() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(2), 0.5).with_max_len(2);
        let r = mine(&d, &params);
        assert_eq!(r.max_pattern_len(), 2);
        assert_eq!(r.trace.last().unwrap().k, 2);
    }

    #[test]
    fn unfiltered_r1_generates_extensions_through_infrequent_prefixes() {
        // Transactions where an infrequent item sits between frequent ones:
        // the paper's unfiltered join must still consider it in R'_2, then
        // drop it at the C_2 filter.
        let d = Dataset::from_transactions([
            (1, [1u32, 5, 9].as_slice()),
            (2, [1, 9].as_slice()),
            (3, [1, 9].as_slice()),
        ]);
        let params = MiningParams::new(MinSupport::Count(3), 0.5);
        let r = mine(&d, &params);
        assert_eq!(r.c(1).unwrap().len(), 2); // {1}, {9}
        assert_eq!(r.c(2).unwrap().get(&[1, 9]), Some(3));
        assert!(r.c(2).unwrap().get(&[1, 5]).is_none());
        // R'_2 counted the pairs through item 5 too: (1,5), (5,9), (1,9)x3.
        assert_eq!(r.trace[1].r_prime_tuples, 5);
    }

    #[test]
    fn empty_dataset_terminates_immediately() {
        let d = Dataset::from_pairs(std::iter::empty());
        let params = MiningParams::new(MinSupport::Count(1), 0.5);
        let r = mine(&d, &params);
        assert_eq!(r.max_pattern_len(), 0);
        assert_eq!(r.trace.len(), 1);
    }

    #[test]
    fn high_min_support_stops_after_c1() {
        let d = tiny();
        let params = MiningParams::new(MinSupport::Count(4), 0.5);
        let r = mine(&d, &params);
        // Only item 2 appears in all four transactions.
        assert_eq!(r.c(1).unwrap().to_vec(), vec![(crate::itemvec::ItemVec::from([2]), 4)]);
        assert!(r.c(2).is_none());
    }

    #[test]
    fn single_transaction_dataset() {
        let d = Dataset::from_transactions([(7, [1u32, 2, 3].as_slice())]);
        let params = MiningParams::new(MinSupport::Count(1), 0.5);
        let r = mine(&d, &params);
        assert_eq!(r.max_pattern_len(), 3);
        assert_eq!(r.c(3).unwrap().get(&[1, 2, 3]), Some(1));
        // R'_2 holds all 3 pairs, R'_3 all single extension chains.
        assert_eq!(r.trace[1].r_prime_tuples, 3);
    }
}
