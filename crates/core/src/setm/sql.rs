//! SQL-driven execution of Algorithm SETM.
//!
//! The paper's major claim is that "at least some aspects of data mining
//! can be carried out by using general query languages such as SQL,
//! rather than by developing specialized black box algorithms". This
//! module makes that claim executable: each iteration *emits the
//! Section 4.1 SQL statements as text* — the `R'_k` extension join, the
//! `C_k` count query, and the `R_k` support filter with its trailing
//! `ORDER BY` — and runs them through `setm-sql` against the paged
//! engine. No mining logic lives here; it is all in the SQL.
//!
//! The emitted statements are recorded verbatim in [`SqlRun::statements`]
//! so examples and tests can display exactly what was executed.
//!
//! # Partitioned parallel execution
//!
//! With more than one worker thread (the `threads` argument of
//! [`mine_with`] / `Miner::threads`) the statement pipeline itself is
//! sharded over contiguous `trans_id` partitions — the same
//! weight-balanced partitioner as the in-memory and paged-engine
//! executions ([`crate::setm::shard`]). Each shard is its own
//! [`SqlEngine`] session on its own pager (one connection and one disk
//! per worker, via [`setm_sql::ShardPool`]) holding only its slice of
//! `SALES`; every iteration runs, concurrently on all shards,
//!
//! ```text
//! INSERT INTO Rk_PRIME_SHARD_<i> SELECT p.trans_id, .., q.item FROM .. ;
//! INSERT INTO Ck_PART_<i>  SELECT .., COUNT(*) .. GROUP BY ..          ;   -- no HAVING
//! ```
//!
//! then ships the shard-local count partials to a coordinator session
//! (a `UNION ALL` realized as bulk data movement, like the initial
//! `SALES` load) where the *global* threshold is applied by one merge
//! statement —
//!
//! ```text
//! INSERT INTO Ck SELECT p.item_1, .., SUM(p.cnt) FROM Ck_PARTS p
//! GROUP BY p.item_1, .. HAVING SUM(p.cnt) >= :minsupport
//! ```
//!
//! — and finally broadcasts the merged `C_k` back so each shard filters
//! and `ORDER BY`-sorts its own `R_k` in parallel. Because the shards
//! partition transactions exactly, itemsets, rules, and the
//! `|R'_k|`/`|R_k|`/`|C_k|` trace series are identical to the sequential
//! plan at every thread count (`tests/sql_equivalence.rs` proves it);
//! the recorded statement trace interleaves each round's per-shard
//! statements (in shard order) with the coordinator's merge statements.
//! A failing shard statement surfaces as a typed
//! [`SqlError::Shard`](setm_sql::SqlError) naming the shard; statement
//! atomicity (an `INSERT` either fully replaces its target table or
//! leaves it untouched) means no partially-populated result table is
//! ever observable afterwards.

use crate::constraints::CompiledConstraints;
use crate::data::{Dataset, MiningParams};
use crate::pattern::CountRelation;
use crate::setm::plan::{
    JoinStrategy, LiveStats, PhysicalPlan, PlanMode, Planner, PlannerConfig,
};
use crate::setm::shard::{partition_by_weight, resolve_threads};
use crate::setm::{IterationTrace, SetmResult};
use setm_obs::{NullSink, ObsEvent, ObsSink};
use setm_sql::{ExecOptions, ExecOutcome, JoinPreference, Params, Result, ShardPool, SqlEngine};

/// The probe index a nested-loop plan creates on each session's `SALES`
/// (the Section 3.2 transaction index). Recorded in the statement trace
/// the first time a session builds it.
const SALES_INDEX: &str = "SALES_TID_ITEM";

/// Build the `(trans_id, item)` index on a session's `SALES` if it does
/// not exist yet, recording the DDL in the statement trace; then aim the
/// planner preference at it for the next statement.
fn prepare_nested_loop(
    engine: &mut SqlEngine,
    statements: &mut Vec<String>,
    sort_buffer_pages: usize,
) -> Result<()> {
    if engine.database().find_index_on("SALES", &[0]).is_none() {
        engine.database_mut().create_index(SALES_INDEX, "SALES", &["trans_id", "item"])?;
        statements.push(format!("CREATE INDEX {SALES_INDEX} ON SALES (trans_id, item)"));
    }
    engine.set_options(ExecOptions { join: JoinPreference::IndexNestedLoop, sort_buffer_pages });
    Ok(())
}

/// Per-iteration session options for everything except a nested-loop
/// extension join: explicit sort-merge (what the default preference
/// resolves to on an index-free session) at the plan's sort workspace.
fn merge_options(sort_buffer_pages: usize) -> ExecOptions {
    ExecOptions { join: JoinPreference::SortMerge, sort_buffer_pages }
}

/// The fixed dataset statistics plus the live `|R_{k-1}|` / `|C_{k-1}|`
/// observations from the previous round of statements.
fn live_stats(dataset: &Dataset, max_txn_len: u64, r_prev: u64, c_prev: u64) -> LiveStats {
    LiveStats {
        n_txns: dataset.n_transactions(),
        sales_tuples: dataset.n_rows(),
        max_txn_len,
        r_prev_tuples: r_prev,
        c_prev_len: c_prev,
    }
}

fn max_txn_len(dataset: &Dataset) -> u64 {
    dataset.transactions().map(|(_, items)| items.len() as u64).max().unwrap_or(0)
}

/// Outcome of a SQL-driven run.
#[derive(Debug)]
pub struct SqlRun {
    pub result: SetmResult,
    /// Every SQL statement executed, in order. In a partitioned run each
    /// round lists the per-shard statements in shard order, then the
    /// coordinator's merge statements.
    pub statements: Vec<String>,
}

/// Column list `item_1, .., item_k` with an optional qualifier.
fn item_cols(qualifier: &str, k: usize) -> String {
    (1..=k)
        .map(|i| {
            if qualifier.is_empty() {
                format!("item_{i}")
            } else {
                format!("{qualifier}.item_{i}")
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Column names `item_1, .., item_k, cnt` (the shape of every count
/// table), owned, for bulk loads.
fn count_table_cols(k: usize) -> Vec<String> {
    (1..=k).map(|i| format!("item_{i}")).chain(std::iter::once("cnt".to_string())).collect()
}

/// Mine `dataset` by generating and executing the paper's SQL.
///
/// `threads` = 0 resolves to the machine's available parallelism, 1
/// forces the paper's sequential plan; mined results and the trace
/// series are identical for every value. This is the low-level
/// execution function behind [`crate::Backend::Sql`]; prefer driving it
/// through the [`crate::Miner`] facade, which validates inputs and
/// returns the shared [`crate::MiningOutcome`] / [`crate::SetmError`]
/// types.
pub fn mine_with(dataset: &Dataset, params: &MiningParams, threads: usize) -> Result<SqlRun> {
    mine_planned(dataset, params, threads, PlanMode::Auto)
}

/// [`mine_with`] with an explicit plan-selection mode.
///
/// The session topology (one connection per shard) is fixed when the
/// first statement runs, so the plan's shard dimension is taken from the
/// k = 2 plan and held for the whole script; recorded per-iteration plans
/// carry the actual session count. The join strategy and sort workspace
/// are honored per iteration ([`SqlEngine::set_options`], plus a
/// `CREATE INDEX` on `SALES` the first time a session runs a nested-loop
/// extension join). `reuse_sort` is recorded but has no SQL-level
/// realization: the Section 4.1 script never re-sorts `R_{k-1}` — the
/// closing `ORDER BY` is its only ordering step.
pub fn mine_planned(
    dataset: &Dataset,
    params: &MiningParams,
    threads: usize,
    mode: PlanMode,
) -> Result<SqlRun> {
    mine_observed(dataset, params, threads, mode, &NullSink)
}

/// [`mine_planned`] with a telemetry sink: each iteration's trace row is
/// reported the moment it is computed ([`ObsEvent::Iteration`]). Events
/// fire on the coordinator thread only (never inside a shard session),
/// carrying copies of already-computed numbers — the emitted SQL and the
/// mined result are identical to the unobserved run.
pub fn mine_observed(
    dataset: &Dataset,
    params: &MiningParams,
    threads: usize,
    mode: PlanMode,
    sink: &dyn ObsSink,
) -> Result<SqlRun> {
    mine_constrained(dataset, params, threads, mode, sink, &CompiledConstraints::none())
}

/// [`mine_observed`] with compiled [`crate::MiningConstraints`]: the
/// anchor/exclusion checks become `IN` / `NOT IN` conjuncts on the
/// Section 4.1 statements themselves, so the set-oriented plan prunes
/// candidates inside the relational engine rather than in client code.
/// With constraints active, each extension round also runs an *audit*
/// statement — the paper's unconstrained join into a scratch table —
/// whose insert count, minus the constrained insert count, is the
/// iteration's `candidates_pruned`. Unconstrained runs execute the
/// paper's statement text byte-identically (no audit tables, no extra
/// conjuncts).
///
/// `cc` is in *mining space*: with a require-constraint the caller (the
/// [`crate::Miner`] facade) hands this function the remapped dataset, so
/// the anchor literals in the emitted SQL are the remapped item ids
/// `0, 1, ..`.
pub fn mine_constrained(
    dataset: &Dataset,
    params: &MiningParams,
    threads: usize,
    mode: PlanMode,
    sink: &dyn ObsSink,
    cc: &CompiledConstraints,
) -> Result<SqlRun> {
    let max_shards = resolve_threads(threads).min(dataset.n_transactions().max(1) as usize);
    let planner = Planner::new(mode, PlannerConfig::with_max_shards(max_shards));
    let boot = live_stats(dataset, max_txn_len(dataset), dataset.n_rows(), 1);
    let layout = planner.plan_iteration(2, &boot).shards;
    if layout <= 1 {
        mine_sequential(dataset, params, &planner, sink, cc)
    } else {
        mine_sharded(dataset, params, layout, &planner, &|_, _| {}, sink, cc)
    }
}

/// Test seam: run the partitioned plan with a per-shard preparation hook
/// (e.g. injecting pager faults into one shard). Not part of the stable
/// API.
#[doc(hidden)]
pub fn mine_sharded_with_prepare(
    dataset: &Dataset,
    params: &MiningParams,
    threads: usize,
    prepare: &(dyn Fn(usize, &mut SqlEngine) + Sync),
) -> Result<SqlRun> {
    let threads = resolve_threads(threads).min(dataset.n_transactions().max(1) as usize);
    let planner = Planner::new(PlanMode::Auto, PlannerConfig::with_max_shards(threads.max(1)));
    mine_sharded(
        dataset,
        params,
        threads.max(1),
        &planner,
        prepare,
        &NullSink,
        &CompiledConstraints::none(),
    )
}

/// The compiled-constraint conjunct for one pattern position, as SQL
/// over `col`: `IN` pinning an anchored position to its anchor item,
/// `NOT IN` rejecting the exclusion list at a free position, or nothing
/// when the position is unconstrained.
fn position_clause(col: &str, pos: usize, cc: &CompiledConstraints) -> Option<String> {
    if pos < cc.anchor_len() {
        Some(format!("{col} IN ({pos})"))
    } else if !cc.excluded().is_empty() {
        let list =
            cc.excluded().iter().map(|i| i.to_string()).collect::<Vec<_>>().join(", ");
        Some(format!("{col} NOT IN ({list})"))
    } else {
        None
    }
}

/// Extra `AND …` conjuncts the constrained extension join appends to
/// the paper's `WHERE` clause. Empty for an unconstrained run, keeping
/// the emitted text byte-identical to the paper's. The k = 2 join reads
/// prefixes from the *unfiltered* `SALES`, so position 0 is constrained
/// there too; for k >= 3 the prefix is already clean (`R_{k-1}` was
/// filtered against the anchored `C_{k-1}`).
fn extension_conjuncts(k: usize, cc: &CompiledConstraints) -> String {
    let mut out = String::new();
    if cc.is_empty() {
        return out;
    }
    if k == 2 {
        if let Some(clause) = position_clause("p.item", 0, cc) {
            out.push_str(" AND ");
            out.push_str(&clause);
        }
    }
    if let Some(clause) = position_clause("q.item", k - 1, cc) {
        out.push_str(" AND ");
        out.push_str(&clause);
    }
    out
}

/// The `WHERE` clause of the constrained `C_1` count (between `FROM`
/// and `GROUP BY`); empty for an unconstrained run.
fn c1_where(cc: &CompiledConstraints) -> String {
    if cc.is_empty() {
        return String::new();
    }
    match position_clause("r1.item", 0, cc) {
        Some(clause) => format!("\nWHERE {clause}"),
        None => String::new(),
    }
}

/// The k = 1 pruned count: `SALES` rows whose item fails the compiled
/// anchor/exclusion check. Computed from the dataset (the relational
/// side never materializes the rejected rows), with the same accounting
/// as the in-memory and paged-engine executions.
fn k1_pruned(dataset: &Dataset, cc: &CompiledConstraints) -> u64 {
    if cc.is_empty() {
        return 0;
    }
    dataset.items().iter().filter(|&&it| !cc.allows_at(0, it)).count() as u64
}

/// The paper's sequential Section 4.1 plan on a single session. The
/// emitted statement text is byte-identical to the pre-parallel
/// releases' whenever the planner keeps the merge-scan join —
/// `threads(1)` *is* the paper's plan; a nested-loop iteration adds only
/// its `CREATE INDEX` DDL to the trace.
fn mine_sequential(
    dataset: &Dataset,
    params: &MiningParams,
    planner: &Planner,
    sink: &dyn ObsSink,
    cc: &CompiledConstraints,
) -> Result<SqlRun> {
    let mut engine = SqlEngine::new();
    let mut statements: Vec<String> = Vec::new();
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);
    let bind = Params::new().with("minsupport", min_count);

    // Load SALES(trans_id, item). Loading is data preparation, not SQL
    // mining, so it uses the bulk API.
    let rows = dataset.sales_rows();
    engine.load_table("SALES", &["trans_id", "item"], rows.iter().map(|r| r.as_slice()))?;

    let run = |engine: &mut SqlEngine, statements: &mut Vec<String>, sql: String| {
        let outcome = engine.execute(&sql, &bind);
        statements.push(sql);
        outcome
    };

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();

    // C1 — the Section 3.1 query, verbatim (a constrained run inserts
    // its anchor/exclusion predicate as a WHERE clause).
    run(&mut engine, &mut statements, "CREATE TABLE C1 (item_1 INT, cnt INT)".into())?;
    run(
        &mut engine,
        &mut statements,
        format!(
            "INSERT INTO C1\n\
             SELECT r1.item, COUNT(*)\n\
             FROM SALES r1{c1_where}\n\
             GROUP BY r1.item\n\
             HAVING COUNT(*) >= :minsupport",
            c1_where = c1_where(cc),
        ),
    )?;
    let c1 = read_counts(&mut engine, 1)?;
    trace.push(iteration_one_trace(dataset, &c1, k1_pruned(dataset, cc)));
    sink.on_event(&ObsEvent::Iteration(trace[0].snapshot()));
    let mut c_prev_len = c1.len() as u64;
    let mut prev_rows = dataset.n_rows();
    let longest = max_txn_len(dataset);
    if !c1.is_empty() {
        counts.push(c1);
    }

    let mut k = 1usize;
    if max_len > 1 && n_txns > 0 {
        loop {
            k += 1;
            let stats = live_stats(dataset, longest, prev_rows, c_prev_len);
            let plan = {
                // One session: the shard dimension is pinned to it.
                let mut p = planner.plan_iteration(k, &stats);
                p.shards = 1;
                p
            };
            engine.set_options(merge_options(plan.sort_buffer_pages));
            let prev = if k == 2 { "SALES".to_string() } else { format!("R{}", k - 1) };
            let prev_items = if k == 2 { "p.item".to_string() } else { item_cols("p", k - 1) };
            let prev_last =
                if k == 2 { "p.item".to_string() } else { format!("p.item_{}", k - 1) };

            // R'_k — the Section 4.1 extension join, via the plan's
            // access path.
            let rk_prime = format!("R{k}_PRIME");
            let cols: String =
                (1..=k).map(|i| format!("item_{i} INT")).collect::<Vec<_>>().join(", ");
            run(
                &mut engine,
                &mut statements,
                format!("CREATE TABLE {rk_prime} (trans_id INT, {cols})"),
            )?;
            if plan.join == JoinStrategy::NestedLoop {
                prepare_nested_loop(&mut engine, &mut statements, plan.sort_buffer_pages)?;
            }
            let inserted = run(
                &mut engine,
                &mut statements,
                format!(
                    "INSERT INTO {rk_prime}\n\
                     SELECT p.trans_id, {prev_items}, q.item\n\
                     FROM {prev} p, SALES q\n\
                     WHERE q.trans_id = p.trans_id AND q.item > {prev_last}{extra}",
                    extra = extension_conjuncts(k, cc),
                ),
            )?;
            engine.set_options(merge_options(plan.sort_buffer_pages));
            let r_prime_tuples = match inserted {
                ExecOutcome::Inserted(n) => n,
                _ => 0,
            };

            // Audit (constrained runs only): the paper's unconstrained
            // join into a scratch table; its insert count minus the
            // constrained one is this iteration's pruned-candidate count.
            let pruned = if cc.is_empty() {
                0
            } else {
                let audit = format!("R{k}_AUDIT");
                run(
                    &mut engine,
                    &mut statements,
                    format!("CREATE TABLE {audit} (trans_id INT, {cols})"),
                )?;
                let audited = run(
                    &mut engine,
                    &mut statements,
                    format!(
                        "INSERT INTO {audit}\n\
                         SELECT p.trans_id, {prev_items}, q.item\n\
                         FROM {prev} p, SALES q\n\
                         WHERE q.trans_id = p.trans_id AND q.item > {prev_last}"
                    ),
                )?;
                run(&mut engine, &mut statements, format!("DROP TABLE {audit}"))?;
                match audited {
                    ExecOutcome::Inserted(n) => n.saturating_sub(r_prime_tuples),
                    _ => 0,
                }
            };

            // C_k — group, count, apply minimum support (Section 4.1).
            run(&mut engine, &mut statements, format!("CREATE TABLE C{k} ({cols}, cnt INT)"))?;
            run(
                &mut engine,
                &mut statements,
                format!(
                    "INSERT INTO C{k}\n\
                     SELECT {items}, COUNT(*)\n\
                     FROM {rk_prime} p\n\
                     GROUP BY {items}\n\
                     HAVING COUNT(*) >= :minsupport",
                    items = item_cols("p", k),
                ),
            )?;
            let c_k = read_counts(&mut engine, k)?;

            // R_k — retain supported tuples, sorted for the next pass
            // (Section 4.1's final INSERT with ORDER BY).
            run(
                &mut engine,
                &mut statements,
                format!("CREATE TABLE R{k} (trans_id INT, {cols})"),
            )?;
            let join_cond: String = (1..=k)
                .map(|i| format!("p.item_{i} = q.item_{i}"))
                .collect::<Vec<_>>()
                .join(" AND ");
            let inserted = run(
                &mut engine,
                &mut statements,
                format!(
                    "INSERT INTO R{k}\n\
                     SELECT p.trans_id, {items}\n\
                     FROM {rk_prime} p, C{k} q\n\
                     WHERE {join_cond}\n\
                     ORDER BY p.trans_id, {items}",
                    items = item_cols("p", k),
                ),
            )?;
            let r_tuples = match inserted {
                ExecOutcome::Inserted(n) => n,
                _ => 0,
            };

            // R'_k is consumed; the paper discards it.
            run(&mut engine, &mut statements, format!("DROP TABLE {rk_prime}"))?;

            trace.push(iteration_trace(k, r_prime_tuples, r_tuples, c_k.len() as u64, pruned, plan));
            sink.on_event(&ObsEvent::Iteration(trace[trace.len() - 1].snapshot()));
            prev_rows = r_tuples;
            c_prev_len = c_k.len() as u64;

            let done = r_tuples == 0 || k >= max_len;
            if !c_k.is_empty() {
                counts.push(c_k);
            }
            if done {
                break;
            }
        }
    }

    Ok(SqlRun {
        result: SetmResult { counts, trace, n_transactions: n_txns, min_support_count: min_count },
        statements,
    })
}

/// The partitioned Section 4.1 plan: per-shard statement pipelines run
/// concurrently (one session per shard), shard-local counts merged by a
/// coordinator `GROUP BY … HAVING SUM(cnt) >= :minsupport`, the merged
/// `C_k` broadcast back for the per-shard filter. See the module docs.
#[allow(clippy::too_many_arguments)]
fn mine_sharded(
    dataset: &Dataset,
    params: &MiningParams,
    threads: usize,
    planner: &Planner,
    prepare: &(dyn Fn(usize, &mut SqlEngine) + Sync),
    sink: &dyn ObsSink,
    cc: &CompiledConstraints,
) -> Result<SqlRun> {
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);
    let bind = Params::new().with("minsupport", min_count);

    // Contiguous trans_id shards, weight-balanced by row count — the
    // same partitioner as the in-memory and paged-engine executions.
    let weights: Vec<usize> = dataset.transactions().map(|(_, items)| items.len()).collect();
    let ranges = partition_by_weight(&weights, threads);
    let mut pool = ShardPool::new(ranges.len());
    {
        let mut txns = dataset.transactions();
        for (i, range) in ranges.iter().enumerate() {
            let mut rows: Vec<[u32; 2]> = Vec::new();
            for (tid, items) in txns.by_ref().take(range.len()) {
                rows.extend(items.iter().map(|&it| [tid, it]));
            }
            // Each shard's slice of SALES — data preparation, like the
            // sequential load.
            pool.shard_mut(i).load_table(
                "SALES",
                &["trans_id", "item"],
                rows.iter().map(|r| r.as_slice()),
            )?;
            prepare(i, pool.shard_mut(i));
        }
    }
    // The coordinator session: merges shard-local count partials and
    // holds the authoritative C_k tables.
    let mut merge = SqlEngine::new();
    let mut statements: Vec<String> = Vec::new();

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();

    // k = 1 — shard-local item counts, *without* HAVING: the support
    // threshold is global, so it applies only at the coordinator merge.
    let shard_stmts = pool.run(|i, engine| {
        let mut stmts = Vec::new();
        exec_on(engine, &mut stmts, &bind, format!("CREATE TABLE C1_PART_{i} (item_1 INT, cnt INT)"))?;
        exec_on(
            engine,
            &mut stmts,
            &bind,
            format!(
                "INSERT INTO C1_PART_{i}\n\
                 SELECT r1.item, COUNT(*)\n\
                 FROM SALES r1{c1_where}\n\
                 GROUP BY r1.item",
                c1_where = c1_where(cc),
            ),
        )?;
        Ok(stmts)
    })?;
    statements.extend(shard_stmts.into_iter().flatten());
    let c1 = merge_shard_counts(&mut merge, &mut pool, &mut statements, &bind, 1)?;
    trace.push(iteration_one_trace(dataset, &c1, k1_pruned(dataset, cc)));
    sink.on_event(&ObsEvent::Iteration(trace[0].snapshot()));
    let mut c_prev_len = c1.len() as u64;
    let mut prev_rows = dataset.n_rows();
    let longest = max_txn_len(dataset);
    if !c1.is_empty() {
        counts.push(c1);
    }

    let mut k = 1usize;
    if max_len > 1 && n_txns > 0 {
        loop {
            k += 1;
            let stats = live_stats(dataset, longest, prev_rows, c_prev_len);
            let plan = {
                // The session topology is fixed at connect time: the
                // shard dimension is pinned to the pool.
                let mut p = planner.plan_iteration(k, &stats);
                p.shards = pool.len();
                p
            };
            let cols: String =
                (1..=k).map(|i| format!("item_{i} INT")).collect::<Vec<_>>().join(", ");
            let items = item_cols("p", k);

            // Phase 1 (parallel): extension join + local counts per
            // shard, via the plan's access path.
            let phase1 = pool.run(|i, engine| {
                let mut stmts = Vec::new();
                engine.set_options(merge_options(plan.sort_buffer_pages));
                let prev = if k == 2 {
                    "SALES".to_string()
                } else {
                    format!("R{}_SHARD_{i}", k - 1)
                };
                let prev_items =
                    if k == 2 { "p.item".to_string() } else { item_cols("p", k - 1) };
                let prev_last =
                    if k == 2 { "p.item".to_string() } else { format!("p.item_{}", k - 1) };
                let rk_prime = format!("R{k}_PRIME_SHARD_{i}");
                exec_on(
                    engine,
                    &mut stmts,
                    &bind,
                    format!("CREATE TABLE {rk_prime} (trans_id INT, {cols})"),
                )?;
                if plan.join == JoinStrategy::NestedLoop {
                    prepare_nested_loop(engine, &mut stmts, plan.sort_buffer_pages)?;
                }
                let inserted = exec_on(
                    engine,
                    &mut stmts,
                    &bind,
                    format!(
                        "INSERT INTO {rk_prime}\n\
                         SELECT p.trans_id, {prev_items}, q.item\n\
                         FROM {prev} p, SALES q\n\
                         WHERE q.trans_id = p.trans_id AND q.item > {prev_last}{extra}",
                        extra = extension_conjuncts(k, cc),
                    ),
                )?;
                engine.set_options(merge_options(plan.sort_buffer_pages));
                let r_prime_rows = match inserted {
                    ExecOutcome::Inserted(n) => n,
                    _ => 0,
                };
                // Shard-local audit (constrained runs only): count the
                // paper's unconstrained join; the coordinator sums the
                // differences into the iteration's pruned count.
                let audit_rows = if cc.is_empty() {
                    0
                } else {
                    let audit = format!("R{k}_AUDIT_SHARD_{i}");
                    exec_on(
                        engine,
                        &mut stmts,
                        &bind,
                        format!("CREATE TABLE {audit} (trans_id INT, {cols})"),
                    )?;
                    let audited = exec_on(
                        engine,
                        &mut stmts,
                        &bind,
                        format!(
                            "INSERT INTO {audit}\n\
                             SELECT p.trans_id, {prev_items}, q.item\n\
                             FROM {prev} p, SALES q\n\
                             WHERE q.trans_id = p.trans_id AND q.item > {prev_last}"
                        ),
                    )?;
                    exec_on(engine, &mut stmts, &bind, format!("DROP TABLE {audit}"))?;
                    match audited {
                        ExecOutcome::Inserted(n) => n,
                        _ => 0,
                    }
                };
                exec_on(
                    engine,
                    &mut stmts,
                    &bind,
                    format!("CREATE TABLE C{k}_PART_{i} ({cols}, cnt INT)"),
                )?;
                exec_on(
                    engine,
                    &mut stmts,
                    &bind,
                    format!(
                        "INSERT INTO C{k}_PART_{i}\n\
                         SELECT {items}, COUNT(*)\n\
                         FROM {rk_prime} p\n\
                         GROUP BY {items}"
                    ),
                )?;
                Ok((stmts, r_prime_rows, audit_rows))
            })?;
            let r_prime_tuples: u64 = phase1.iter().map(|(_, n, _)| n).sum();
            let audit_tuples: u64 = phase1.iter().map(|(_, _, a)| a).sum();
            let pruned =
                if cc.is_empty() { 0 } else { audit_tuples.saturating_sub(r_prime_tuples) };
            statements.extend(phase1.into_iter().flat_map(|(stmts, _, _)| stmts));

            // Global C_k: union the partials, SUM-merge under the
            // threshold on the coordinator.
            let c_k = merge_shard_counts(&mut merge, &mut pool, &mut statements, &bind, k)?;

            // Phase 2 (parallel): broadcast C_k (data movement, like the
            // SALES load), filter + ORDER BY per shard, drop R'_k.
            let c_rows = c_k.to_engine_rows();
            let bcast_cols = count_table_cols(k);
            let phase2 = pool.run(|i, engine| {
                let mut stmts = Vec::new();
                engine.set_options(merge_options(plan.sort_buffer_pages));
                let col_refs: Vec<&str> = bcast_cols.iter().map(String::as_str).collect();
                engine.load_table(
                    &format!("C{k}"),
                    &col_refs,
                    c_rows.iter().map(|r| r.as_slice()),
                )?;
                let rk_prime = format!("R{k}_PRIME_SHARD_{i}");
                let r_k = format!("R{k}_SHARD_{i}");
                exec_on(
                    engine,
                    &mut stmts,
                    &bind,
                    format!("CREATE TABLE {r_k} (trans_id INT, {cols})"),
                )?;
                let join_cond: String = (1..=k)
                    .map(|c| format!("p.item_{c} = q.item_{c}"))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                let inserted = exec_on(
                    engine,
                    &mut stmts,
                    &bind,
                    format!(
                        "INSERT INTO {r_k}\n\
                         SELECT p.trans_id, {items}\n\
                         FROM {rk_prime} p, C{k} q\n\
                         WHERE {join_cond}\n\
                         ORDER BY p.trans_id, {items}"
                    ),
                )?;
                let r_rows = match inserted {
                    ExecOutcome::Inserted(n) => n,
                    _ => 0,
                };
                // R'_k is consumed; the paper discards it.
                exec_on(engine, &mut stmts, &bind, format!("DROP TABLE {rk_prime}"))?;
                Ok((stmts, r_rows))
            })?;
            let r_tuples: u64 = phase2.iter().map(|(_, n)| n).sum();
            statements.extend(phase2.into_iter().flat_map(|(stmts, _)| stmts));

            trace.push(iteration_trace(k, r_prime_tuples, r_tuples, c_k.len() as u64, pruned, plan));
            sink.on_event(&ObsEvent::Iteration(trace[trace.len() - 1].snapshot()));
            prev_rows = r_tuples;
            c_prev_len = c_k.len() as u64;

            let done = r_tuples == 0 || k >= max_len;
            if !c_k.is_empty() {
                counts.push(c_k);
            }
            if done {
                break;
            }
        }
    }

    Ok(SqlRun {
        result: SetmResult { counts, trace, n_transactions: n_txns, min_support_count: min_count },
        statements,
    })
}

/// Execute one statement on a session, recording its text (recorded even
/// on failure, so a trace always shows the statement that broke).
fn exec_on(
    engine: &mut SqlEngine,
    statements: &mut Vec<String>,
    bind: &Params,
    sql: String,
) -> Result<ExecOutcome> {
    let outcome = engine.execute(&sql, bind);
    statements.push(sql);
    outcome
}

/// The coordinator half of a partitioned `GROUP BY`: ship every shard's
/// `C{k}_PART_{i}` rows into one `C{k}_PARTS` table (the `UNION ALL`,
/// done as bulk data movement), then apply the global threshold with one
/// `GROUP BY … HAVING SUM(cnt) >= :minsupport` merge statement and read
/// the result back.
fn merge_shard_counts(
    merge: &mut SqlEngine,
    pool: &mut ShardPool,
    statements: &mut Vec<String>,
    bind: &Params,
    k: usize,
) -> Result<CountRelation> {
    let mut union_rows: Vec<Vec<u32>> = Vec::new();
    for i in 0..pool.len() {
        // Reading a shard's partials touches that shard's storage, so a
        // fault here must still name the shard (same contract as
        // `ShardPool::run`).
        let shard_err = |e: setm_sql::SqlError| setm_sql::SqlError::Shard {
            shard: i,
            source: Box::new(e),
        };
        let table = pool
            .shard_mut(i)
            .database()
            .table(&format!("C{k}_PART_{i}"))
            .map_err(|e| shard_err(e.into()))?;
        union_rows.extend(table.file.rows().map_err(|e| shard_err(e.into()))?);
    }
    let col_names = count_table_cols(k);
    let col_refs: Vec<&str> = col_names.iter().map(String::as_str).collect();
    merge.load_table(&format!("C{k}_PARTS"), &col_refs, union_rows.iter().map(|r| r.as_slice()))?;

    let cols: String = (1..=k).map(|i| format!("item_{i} INT")).collect::<Vec<_>>().join(", ");
    let items = item_cols("p", k);
    exec_on(merge, statements, bind, format!("CREATE TABLE C{k} ({cols}, cnt INT)"))?;
    exec_on(
        merge,
        statements,
        bind,
        format!(
            "INSERT INTO C{k}\n\
             SELECT {items}, SUM(p.cnt)\n\
             FROM C{k}_PARTS p\n\
             GROUP BY {items}\n\
             HAVING SUM(p.cnt) >= :minsupport"
        ),
    )?;
    exec_on(merge, statements, bind, format!("DROP TABLE C{k}_PARTS"))?;
    read_counts(merge, k)
}

/// The k = 1 trace row (identical fields on the sequential and
/// partitioned plans: the paper never filters the sales relation).
fn iteration_one_trace(
    dataset: &Dataset,
    c1: &CountRelation,
    candidates_pruned: u64,
) -> IterationTrace {
    IterationTrace {
        k: 1,
        r_prime_tuples: dataset.n_rows(),
        r_tuples: dataset.n_rows(),
        r_kbytes: dataset.n_rows() as f64 * 8.0 / 1024.0,
        c_len: c1.len() as u64,
        page_accesses: 0,
        estimated_io_ms: 0.0,
        cache_hits: 0,
        pool_steals: 0,
        candidates_pruned,
        plan: None,
    }
}

/// A k >= 2 trace row (the SQL execution does not meter page accesses).
fn iteration_trace(
    k: usize,
    r_prime_tuples: u64,
    r_tuples: u64,
    c_len: u64,
    candidates_pruned: u64,
    plan: PhysicalPlan,
) -> IterationTrace {
    IterationTrace {
        k,
        r_prime_tuples,
        r_tuples,
        r_kbytes: r_tuples as f64 * ((k + 1) * 4) as f64 / 1024.0,
        c_len,
        page_accesses: 0,
        estimated_io_ms: 0.0,
        cache_hits: 0,
        pool_steals: 0,
        candidates_pruned,
        plan: Some(plan),
    }
}

/// Read `C_k` back into memory. Its rows are already in lexicographic
/// pattern order (the grouped output is sorted on the group columns).
fn read_counts(engine: &mut SqlEngine, k: usize) -> Result<CountRelation> {
    let cols = item_cols("", k);
    let rows = engine.query(&format!("SELECT {cols}, cnt FROM C{k}"), &Params::new())?;
    let mut c = CountRelation::new(k);
    for row in &rows.rows {
        c.push(&row[..k], row[k] as u64);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, MinSupport, MiningParams};
    use crate::example;
    use crate::setm::memory;

    #[test]
    fn sql_run_matches_memory_on_worked_example() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let mem = memory::mine(&d, &params);
        let sql = mine_with(&d, &params, 1).unwrap();
        assert_eq!(sql.result.frequent_itemsets(), mem.frequent_itemsets());
        // Tuple counts per iteration agree (|R'_k|, |R_k|, |C_k|).
        for (a, b) in mem.trace.iter().zip(sql.result.trace.iter()) {
            assert_eq!(
                (a.k, a.r_prime_tuples, a.r_tuples, a.c_len),
                (b.k, b.r_prime_tuples, b.r_tuples, b.c_len)
            );
        }
    }

    #[test]
    fn emitted_sql_is_the_papers_text() {
        let d = example::paper_example_dataset();
        let sql = mine_with(&d, &example::paper_example_params(), 1).unwrap();
        let all = sql.statements.join("\n---\n");
        // The Section 3.1 C1 query.
        assert!(all.contains("HAVING COUNT(*) >= :minsupport"));
        // The Section 4.1 extension join.
        assert!(all.contains("WHERE q.trans_id = p.trans_id AND q.item > p.item"));
        // The Section 4.1 filter with ORDER BY.
        assert!(all.contains("ORDER BY p.trans_id"));
        // Three iterations of tables were created.
        assert!(all.contains("CREATE TABLE R3"));
        // The sequential plan stays the paper's: no shard tables.
        assert!(!all.contains("SHARD"));
    }

    #[test]
    fn partitioned_run_matches_sequential_on_worked_example() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let seq = mine_with(&d, &params, 1).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let par = mine_with(&d, &params, threads).unwrap();
            assert_eq!(
                par.result.frequent_itemsets(),
                seq.result.frequent_itemsets(),
                "threads={threads}"
            );
            assert_eq!(par.result.trace.len(), seq.result.trace.len());
            for (a, b) in seq.result.trace.iter().zip(par.result.trace.iter()) {
                assert_eq!(
                    (a.k, a.r_prime_tuples, a.r_tuples, a.c_len),
                    (b.k, b.r_prime_tuples, b.r_tuples, b.c_len),
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn partitioned_statements_name_shards_and_merge_with_sum() {
        let d = example::paper_example_dataset();
        let sql = mine_with(&d, &example::paper_example_params(), 2).unwrap();
        let all = sql.statements.join("\n---\n");
        assert!(all.contains("R2_PRIME_SHARD_0"), "{all}");
        assert!(all.contains("R2_PRIME_SHARD_1"), "{all}");
        assert!(all.contains("C1_PART_0"), "{all}");
        assert!(all.contains("HAVING SUM(p.cnt) >= :minsupport"), "{all}");
        // Shard-local counts carry no threshold — it is global.
        assert!(!all.contains("COUNT(*)\nFROM R2_PRIME_SHARD_0 p\nGROUP BY p.item_1, p.item_2\nHAVING"));
    }

    #[test]
    fn sql_run_matches_memory_on_pseudorandom_data() {
        let mut txns = Vec::new();
        let mut state = 12345u32;
        for tid in 0..40u32 {
            let mut items = Vec::new();
            for _ in 0..5 {
                state = state.wrapping_mul(1103515245).wrapping_add(12345);
                items.push(1 + (state >> 16) % 10);
            }
            items.sort_unstable();
            items.dedup();
            txns.push((tid, items));
        }
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.15), 0.5);
        let mem = memory::mine(&d, &params);
        for threads in [1usize, 4] {
            let sql = mine_with(&d, &params, threads).unwrap();
            assert_eq!(
                sql.result.frequent_itemsets(),
                mem.frequent_itemsets(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_dataset_is_handled() {
        let d = Dataset::from_pairs(std::iter::empty());
        for threads in [1usize, 4] {
            let run = mine_with(&d, &MiningParams::new(MinSupport::Count(1), 0.5), threads)
                .unwrap();
            assert_eq!(run.result.max_pattern_len(), 0);
        }
    }
}
