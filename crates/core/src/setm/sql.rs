//! SQL-driven execution of Algorithm SETM.
//!
//! The paper's major claim is that "at least some aspects of data mining
//! can be carried out by using general query languages such as SQL,
//! rather than by developing specialized black box algorithms". This
//! module makes that claim executable: each iteration *emits the
//! Section 4.1 SQL statements as text* — the `R'_k` extension join, the
//! `C_k` count query, and the `R_k` support filter with its trailing
//! `ORDER BY` — and runs them through `setm-sql` against the paged
//! engine. No mining logic lives here; it is all in the SQL.
//!
//! The emitted statements are recorded verbatim in [`SqlRun::statements`]
//! so examples and tests can display exactly what was executed.

use crate::data::{Dataset, MiningParams};
use crate::pattern::CountRelation;
use crate::setm::{IterationTrace, SetmResult};
use setm_sql::{ExecOutcome, Params, Result, SqlEngine};

/// Outcome of a SQL-driven run.
#[derive(Debug)]
pub struct SqlRun {
    pub result: SetmResult,
    /// Every SQL statement executed, in order.
    pub statements: Vec<String>,
}

/// Column list `item_1, .., item_k` with an optional qualifier.
fn item_cols(qualifier: &str, k: usize) -> String {
    (1..=k)
        .map(|i| {
            if qualifier.is_empty() {
                format!("item_{i}")
            } else {
                format!("{qualifier}.item_{i}")
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Mine `dataset` by generating and executing the paper's SQL.
///
/// This is the low-level execution function behind
/// [`crate::Backend::Sql`]; prefer driving it through the
/// [`crate::Miner`] facade, which validates inputs and returns the
/// shared [`crate::MiningOutcome`] / [`crate::SetmError`] types.
pub fn mine_with(dataset: &Dataset, params: &MiningParams) -> Result<SqlRun> {
    let mut engine = SqlEngine::new();
    let mut statements: Vec<String> = Vec::new();
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);
    let bind = Params::new().with("minsupport", min_count);

    // Load SALES(trans_id, item). Loading is data preparation, not SQL
    // mining, so it uses the bulk API.
    let rows = dataset.sales_rows();
    engine.load_table("SALES", &["trans_id", "item"], rows.iter().map(|r| r.as_slice()))?;

    let run = |engine: &mut SqlEngine, statements: &mut Vec<String>, sql: String| {
        let outcome = engine.execute(&sql, &bind);
        statements.push(sql);
        outcome
    };

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();

    // C1 — the Section 3.1 query, verbatim.
    run(&mut engine, &mut statements, "CREATE TABLE C1 (item_1 INT, cnt INT)".into())?;
    run(
        &mut engine,
        &mut statements,
        "INSERT INTO C1\n\
         SELECT r1.item, COUNT(*)\n\
         FROM SALES r1\n\
         GROUP BY r1.item\n\
         HAVING COUNT(*) >= :minsupport"
            .into(),
    )?;
    let c1 = read_counts(&mut engine, 1)?;
    trace.push(IterationTrace {
        k: 1,
        r_prime_tuples: dataset.n_rows(),
        r_tuples: dataset.n_rows(),
        r_kbytes: dataset.n_rows() as f64 * 8.0 / 1024.0,
        c_len: c1.len() as u64,
        page_accesses: 0,
        estimated_io_ms: 0.0,
    });
    if !c1.is_empty() {
        counts.push(c1);
    }

    let mut k = 1usize;
    if max_len > 1 && n_txns > 0 {
        loop {
            k += 1;
            let prev = if k == 2 { "SALES".to_string() } else { format!("R{}", k - 1) };
            let prev_items = if k == 2 { "p.item".to_string() } else { item_cols("p", k - 1) };
            let prev_last =
                if k == 2 { "p.item".to_string() } else { format!("p.item_{}", k - 1) };

            // R'_k — the extension merge-scan join (Section 4.1).
            let rk_prime = format!("R{k}_PRIME");
            let cols: String =
                (1..=k).map(|i| format!("item_{i} INT")).collect::<Vec<_>>().join(", ");
            run(
                &mut engine,
                &mut statements,
                format!("CREATE TABLE {rk_prime} (trans_id INT, {cols})"),
            )?;
            let inserted = run(
                &mut engine,
                &mut statements,
                format!(
                    "INSERT INTO {rk_prime}\n\
                     SELECT p.trans_id, {prev_items}, q.item\n\
                     FROM {prev} p, SALES q\n\
                     WHERE q.trans_id = p.trans_id AND q.item > {prev_last}"
                ),
            )?;
            let r_prime_tuples = match inserted {
                ExecOutcome::Inserted(n) => n,
                _ => 0,
            };

            // C_k — group, count, apply minimum support (Section 4.1).
            run(&mut engine, &mut statements, format!("CREATE TABLE C{k} ({cols}, cnt INT)"))?;
            run(
                &mut engine,
                &mut statements,
                format!(
                    "INSERT INTO C{k}\n\
                     SELECT {items}, COUNT(*)\n\
                     FROM {rk_prime} p\n\
                     GROUP BY {items}\n\
                     HAVING COUNT(*) >= :minsupport",
                    items = item_cols("p", k),
                ),
            )?;
            let c_k = read_counts(&mut engine, k)?;

            // R_k — retain supported tuples, sorted for the next pass
            // (Section 4.1's final INSERT with ORDER BY).
            run(
                &mut engine,
                &mut statements,
                format!("CREATE TABLE R{k} (trans_id INT, {cols})"),
            )?;
            let join_cond: String = (1..=k)
                .map(|i| format!("p.item_{i} = q.item_{i}"))
                .collect::<Vec<_>>()
                .join(" AND ");
            let inserted = run(
                &mut engine,
                &mut statements,
                format!(
                    "INSERT INTO R{k}\n\
                     SELECT p.trans_id, {items}\n\
                     FROM {rk_prime} p, C{k} q\n\
                     WHERE {join_cond}\n\
                     ORDER BY p.trans_id, {items}",
                    items = item_cols("p", k),
                ),
            )?;
            let r_tuples = match inserted {
                ExecOutcome::Inserted(n) => n,
                _ => 0,
            };

            // R'_k is consumed; the paper discards it.
            run(&mut engine, &mut statements, format!("DROP TABLE {rk_prime}"))?;

            trace.push(IterationTrace {
                k,
                r_prime_tuples,
                r_tuples,
                r_kbytes: r_tuples as f64 * ((k + 1) * 4) as f64 / 1024.0,
                c_len: c_k.len() as u64,
                page_accesses: 0,
                estimated_io_ms: 0.0,
            });

            let done = r_tuples == 0 || k >= max_len;
            if !c_k.is_empty() {
                counts.push(c_k);
            }
            if done {
                break;
            }
        }
    }

    Ok(SqlRun {
        result: SetmResult { counts, trace, n_transactions: n_txns, min_support_count: min_count },
        statements,
    })
}

/// Mine `dataset` by generating and executing the paper's SQL.
#[deprecated(
    since = "0.2.0",
    note = "use `Miner::new(params).backend(Backend::Sql).run(dataset)` \
            or the low-level `sql::mine_with`"
)]
pub fn mine_via_sql(dataset: &Dataset, params: &MiningParams) -> Result<SqlRun> {
    mine_with(dataset, params)
}

/// Read `C_k` back into memory. Its rows are already in lexicographic
/// pattern order (the grouped output is sorted on the group columns).
fn read_counts(engine: &mut SqlEngine, k: usize) -> Result<CountRelation> {
    let cols = item_cols("", k);
    let rows = engine.query(&format!("SELECT {cols}, cnt FROM C{k}"), &Params::new())?;
    let mut c = CountRelation::new(k);
    for row in &rows.rows {
        c.push(&row[..k], row[k] as u64);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, MinSupport, MiningParams};
    use crate::example;
    use crate::setm::memory;

    #[test]
    fn sql_run_matches_memory_on_worked_example() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let mem = memory::mine(&d, &params);
        let sql = mine_with(&d, &params).unwrap();
        assert_eq!(sql.result.frequent_itemsets(), mem.frequent_itemsets());
        // Tuple counts per iteration agree (|R'_k|, |R_k|, |C_k|).
        for (a, b) in mem.trace.iter().zip(sql.result.trace.iter()) {
            assert_eq!(
                (a.k, a.r_prime_tuples, a.r_tuples, a.c_len),
                (b.k, b.r_prime_tuples, b.r_tuples, b.c_len)
            );
        }
    }

    #[test]
    fn emitted_sql_is_the_papers_text() {
        let d = example::paper_example_dataset();
        let sql = mine_with(&d, &example::paper_example_params()).unwrap();
        let all = sql.statements.join("\n---\n");
        // The Section 3.1 C1 query.
        assert!(all.contains("HAVING COUNT(*) >= :minsupport"));
        // The Section 4.1 extension join.
        assert!(all.contains("WHERE q.trans_id = p.trans_id AND q.item > p.item"));
        // The Section 4.1 filter with ORDER BY.
        assert!(all.contains("ORDER BY p.trans_id"));
        // Three iterations of tables were created.
        assert!(all.contains("CREATE TABLE R3"));
    }

    #[test]
    fn sql_run_matches_memory_on_pseudorandom_data() {
        let mut txns = Vec::new();
        let mut state = 12345u32;
        for tid in 0..40u32 {
            let mut items = Vec::new();
            for _ in 0..5 {
                state = state.wrapping_mul(1103515245).wrapping_add(12345);
                items.push(1 + (state >> 16) % 10);
            }
            items.sort_unstable();
            items.dedup();
            txns.push((tid, items));
        }
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.15), 0.5);
        let mem = memory::mine(&d, &params);
        let sql = mine_with(&d, &params).unwrap();
        assert_eq!(sql.result.frequent_itemsets(), mem.frequent_itemsets());
    }

    #[test]
    fn empty_dataset_is_handled() {
        let d = Dataset::from_pairs(std::iter::empty());
        let run = mine_with(&d, &MiningParams::new(MinSupport::Count(1), 0.5)).unwrap();
        assert_eq!(run.result.max_pattern_len(), 0);
    }
}
