//! Algorithm SETM on the paged storage engine.
//!
//! The same loop as [`crate::setm::memory`], but every relation is a heap
//! file on a simulated disk and every sort, join, and filter goes
//! through `setm-relational` — so each iteration's page accesses are
//! measured and can be compared with the Section 4.3 formula. Differences
//! from the analytical bound are expected and documented: the paper
//! assumes pipelined sorts and free `C_k` handling, while this engine
//! materializes every intermediate (the bound's "2·Σ‖R'_i‖" becomes a
//! measured read+write per sort pass).
//!
//! # Plan-driven execution
//!
//! Every iteration `k ≥ 2` executes a [`PhysicalPlan`] chosen by the
//! [`Planner`] (see [`crate::setm::plan`]) — cost-based in
//! [`PlanMode::Auto`], pinned in [`PlanMode::Forced`]:
//!
//! [`PhysicalPlan`]: crate::setm::plan::PhysicalPlan
//! [`Planner`]: crate::setm::plan::Planner
//! [`PlanMode::Auto`]: crate::setm::plan::PlanMode::Auto
//! [`PlanMode::Forced`]: crate::setm::plan::PlanMode::Forced
//!
//! * `join` — the Figure 4 merge-scan against the local `SALES`, or the
//!   Section 3.2 index-nested-loop probing a `(trans_id, item)` B+-tree
//!   ([`SalesIndex`], built lazily per shard and kept for the rest of the
//!   run; the build is excluded from the meter, as the paper treats
//!   indices as maintained ahead of time, while every probe is charged).
//! * `reuse_sort` — skip the loop-top re-sort of `R_{k-1}` (the closing
//!   ORDER BY of the previous iteration already ordered it); `false`
//!   replays Figure 4 literally. This subsumes the `track_sort_order`
//!   knob, which now feeds the planner (ablation E8).
//! * `shards` — `trans_id`-range partitions, **each on its own pager**
//!   (its own simulated disk — mirroring a disk-per-worker deployment).
//!   When the plan's shard count changes between iterations the engine
//!   repartitions: `R_{k-1}` is drained (charged) and redistributed
//!   (writes charged) while the `SALES` slices are re-laid-out off-meter
//!   like the initial load.
//! * `sort_buffer_pages` — the external-sort workspace for this
//!   iteration's sorts.
//!
//! A single-shard iteration runs the paper's fused sequential pipeline
//! (`C_k` and `R_k` from one counting pass). A multi-shard iteration runs
//! phase 1 (sort → join → sort → threshold-free local count) on all
//! shards in parallel under [`std::thread::scope`], merges the local
//! counts into the global `C_k` ([`CountRelation::merge_sum_filter`]),
//! then filters each shard's `R'_k` against it — one extra scan per
//! shard, so parallel access totals differ from the sequential plan's
//! (wall-clock I/O time would divide by the number of disks). Mined
//! results and the tuple-count trace series are identical for every plan;
//! per-iteration `page_accesses` / `estimated_io_ms` are the sums over
//! all shard pagers.

use crate::constraints::CompiledConstraints;
use crate::data::{Dataset, MiningParams};
use crate::nested_loop::SalesIndex;
use crate::pattern::CountRelation;
use crate::setm::plan::{JoinStrategy, LiveStats, PlanMode, Planner, PlannerConfig};
#[cfg(test)]
use crate::setm::plan::PhysicalPlan;
use crate::setm::shard::{partition_by_weight, resolve_threads};
use crate::setm::{IterationTrace, SetmResult};
use setm_costmodel::DbParams;
use setm_obs::{NullSink, ObsEvent, ObsSink};
use setm_relational::heap::{HeapFile, HeapFileBuilder};
use setm_relational::join::merge_scan_join;
use setm_relational::pager::{IoStats, Pager, SharedPager};
use setm_relational::pool::{split_frames_evenly, BufferPool};
use setm_relational::sort::{external_sort, SortOptions};
use setm_relational::Result;

/// Configuration of the paged-engine backend — what
/// [`crate::Backend::Engine`] carries. Worker threads are *not* part of
/// the backend configuration: they are an execution knob set on the
/// [`crate::Miner`] builder (or passed to [`mine_with`]) so the same
/// knob drives every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Workspace ceiling for the external sorts, in pages (a two-phase
    /// external sort needs at least 3). The planner may size an
    /// iteration's workspace below this, never above.
    pub sort_buffer_pages: usize,
    /// Buffer-cache frames (0 = every page access is charged, the
    /// worst-case accounting the paper's formulas use). With
    /// `shared_pool` the budget is one [`BufferPool`] all shard pagers
    /// attach to; without it each shard gets a private cache slice
    /// ([`split_frames_evenly`], remainder to the heaviest shards).
    pub cache_frames: usize,
    /// Share `cache_frames` through one weighted buffer pool instead of
    /// private per-shard slices. Admission quotas follow shard weight,
    /// rebalanced between iterations from the live `|R_{k-1}|` sizes, so
    /// idle shards' frames migrate to the shards still carrying tuples.
    /// Results are identical either way (pool-vs-split equivalence
    /// suite); only the charged access counts differ.
    pub shared_pool: bool,
    /// Track sort order across iterations (Section 4.1 optimization).
    /// When false, the auto planner emits `reuse_sort = 0` plans from
    /// k = 3 on: the loop-top sort re-sorts `R_{k-1}` even though the
    /// filter step's `ORDER BY` already ordered it.
    pub track_sort_order: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sort_buffer_pages: 256,
            cache_frames: 256,
            shared_pool: true,
            track_sort_order: true,
        }
    }
}

/// Outcome of an engine run: the mining result (with per-iteration I/O
/// and the executed plan in the trace) plus the total page accesses.
#[derive(Debug)]
pub struct EngineRun {
    pub result: SetmResult,
    /// Total page accesses during mining (loading `SALES` and building
    /// the optional probe index excluded); summed over all shard pagers.
    pub total_page_accesses: u64,
    /// Estimated milliseconds under the pager's cost model.
    pub total_estimated_ms: f64,
    /// The full I/O breakdown behind `total_page_accesses` (sequential
    /// vs random reads/writes, cache hits, pool steals), summed over
    /// shard pagers — plus the adaptive rebalance moves in `pool_steals`.
    pub io: IoStats,
    /// Effective buffer frames at the end of the run, summed over shard
    /// pagers. Equals the configured `cache_frames` — the frame-remainder
    /// regression test pins that no frame is silently dropped.
    pub cache_frames: usize,
}

/// Mine `dataset` on a fresh paged engine with cost-based planning.
///
/// `threads` = 0 resolves to the machine's available parallelism, 1
/// forces the paper's sequential plan; mined results are identical for
/// every value. This is the low-level execution function behind
/// [`crate::Backend::Engine`]; prefer driving it through the
/// [`crate::Miner`] facade, which validates inputs and returns the
/// shared [`crate::MiningOutcome`] / [`crate::SetmError`] types.
pub fn mine_with(
    dataset: &Dataset,
    params: &MiningParams,
    config: EngineConfig,
    threads: usize,
) -> Result<EngineRun> {
    mine_planned(dataset, params, config, threads, PlanMode::Auto)
}

/// [`mine_with`] with an explicit plan-selection mode. Every legal
/// [`PlanMode::Forced`] plan mines the identical result; only the access
/// pattern — and therefore the measured I/O — changes.
pub fn mine_planned(
    dataset: &Dataset,
    params: &MiningParams,
    config: EngineConfig,
    threads: usize,
    mode: PlanMode,
) -> Result<EngineRun> {
    mine_observed(dataset, params, config, threads, mode, &NullSink)
}

/// [`mine_planned`] with a telemetry sink: each iteration's trace row is
/// reported the moment it is computed ([`ObsEvent::Iteration`]), shard
/// repartitions and adaptive pool rebalances emit [`ObsEvent::Note`]s.
/// Events fire on the coordinator thread between parallel phases and
/// carry copies of already-computed numbers, so the run's charged I/O
/// and mined result are identical to the unobserved run.
pub fn mine_observed(
    dataset: &Dataset,
    params: &MiningParams,
    config: EngineConfig,
    threads: usize,
    mode: PlanMode,
    sink: &dyn ObsSink,
) -> Result<EngineRun> {
    mine_constrained(dataset, params, config, threads, mode, sink, &CompiledConstraints::none())
}

/// [`mine_observed`] with compiled [`crate::MiningConstraints`] pushed
/// into the extension joins (see `crate::constraints` — the dataset must
/// already be in mining space when items are required). Constraint
/// checks run inside the join predicates, so a pruned pair never reaches
/// `R'_k`, never gets sorted, and never gets counted; the per-iteration
/// pruned-pair totals land in the trace's `candidates_pruned`. With
/// empty constraints this *is* `mine_observed`.
#[allow(clippy::too_many_arguments)]
pub fn mine_constrained(
    dataset: &Dataset,
    params: &MiningParams,
    config: EngineConfig,
    threads: usize,
    mode: PlanMode,
    sink: &dyn ObsSink,
    cc: &CompiledConstraints,
) -> Result<EngineRun> {
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);
    let max_shards = resolve_threads(threads).min(n_txns.max(1) as usize);
    let planner = Planner::new(
        mode,
        PlannerConfig {
            max_shards,
            sort_buffer_cap: config.sort_buffer_pages,
            reuse_sort_order: config.track_sort_order,
            // The join runs per shard, each probing through its own cache
            // region, so the warm-probe discount must see one shard's
            // slice of the frame budget — the whole budget would price
            // probes as warm when no single region can hold the working
            // set. The even slice is also the pool's expected share under
            // balanced weights (rebalance can only grow it).
            pool_frames: config.cache_frames / max_shards.max(1),
            db: DbParams::paper(),
        },
    );

    // One shared pool for the whole run (when enabled); shard pagers
    // attach weighted regions on every (re)layout.
    let pool = (config.shared_pool && config.cache_frames > 0)
        .then(|| BufferPool::new(config.cache_frames));

    // Dataset-wide statistics the planner sees every iteration.
    let weights: Vec<usize> = dataset.transactions().map(|(_, items)| items.len()).collect();
    let sales_tuples: u64 = weights.iter().map(|&w| w as u64).sum();
    let max_txn_len = weights.iter().copied().max().unwrap_or(0) as u64;
    let live = |r_prev_tuples: u64, c_prev_len: u64| LiveStats {
        n_txns,
        sales_tuples,
        max_txn_len,
        r_prev_tuples,
        c_prev_len,
    };

    // The k = 1 count precedes any live observation, so `SALES` is laid
    // out for the plan the first real iteration will run (the shard
    // dimension never depends on the yet-unknown |C_1|).
    let mut layout_shards = planner.plan_iteration(2, &live(sales_tuples, 1)).shards;
    let mut shards = build_shards(dataset, &weights, layout_shards, &config, pool.as_ref())?;
    let cost_model = shards[0].pager.lock().cost_model();
    let mut retired = IoStats::default();

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();
    let k1_sort = SortOptions { buffer_pages: config.sort_buffer_pages };

    // k = 1: sort R1 on item; C1 := generate counts from R1. The paper
    // never filters the sales relation, so no filtered output is built.
    let c1 = if shards.len() == 1 {
        let sh = &mut shards[0];
        let by_item = external_sort(&sh.sales, &[1], k1_sort)?;
        let c1 = count_sorted_groups(&by_item, &[1], min_count, false)?.counts;
        by_item.free()?;
        c1
    } else {
        run_on_shards(&mut shards, |sh| sh.count_items(k1_sort))?;
        let locals = take_local_counts(&mut shards);
        CountRelation::merge_sum_filter(&locals, min_count)
    };
    // Constraint pushdown at k = 1: the anchored/exclusion-filtered C1
    // is the full count relation restricted to items allowed at pattern
    // position 0 — an in-memory restriction (C_k is kept in memory per
    // Section 4.3's accounting, so no I/O is charged), with the pruned
    // rows counted from the dataset exactly like the memory backend.
    let (c1, pruned1) = if cc.is_empty() {
        (c1, 0u64)
    } else {
        let mut kept = CountRelation::new(1);
        for (pattern, count) in c1.iter() {
            if cc.allows_at(0, pattern[0]) {
                kept.push(pattern, count);
            }
        }
        let pruned = dataset.items().iter().filter(|&&it| !cc.allows_at(0, it)).count() as u64;
        (kept, pruned)
    };
    let delta = sum_deltas(&mut shards);
    trace.push(IterationTrace {
        k: 1,
        r_prime_tuples: sales_tuples,
        r_tuples: sales_tuples,
        r_kbytes: shards.iter().map(|sh| sh.sales.data_bytes()).sum::<u64>() as f64 / 1024.0,
        c_len: c1.len() as u64,
        page_accesses: delta.accesses(),
        estimated_io_ms: delta.estimated_ms(&cost_model),
        cache_hits: delta.cache_hits,
        pool_steals: delta.pool_steals,
        candidates_pruned: pruned1,
        plan: None,
    });
    sink.on_event(&ObsEvent::Iteration(trace[0].snapshot()));
    let mut c_prev_len = c1.len() as u64;
    if !c1.is_empty() {
        counts.push(c1);
    }

    let mut r_prev_tuples = sales_tuples;
    let mut k = 1usize;
    if max_len > 1 && n_txns > 0 {
        loop {
            k += 1;
            let stats = live(r_prev_tuples, c_prev_len);
            let plan = planner.plan_iteration(k, &stats);
            let sort_opts = SortOptions { buffer_pages: plan.sort_buffer_pages };

            // Re-shard when the plan's parallelism changed. The move I/O
            // is attributed to this iteration's trace row.
            let mut iter_delta = IoStats::default();
            if plan.shards != layout_shards {
                let (moved, new_shards) = repartition(
                    dataset,
                    &weights,
                    shards,
                    plan.shards,
                    &config,
                    pool.as_ref(),
                    &mut retired,
                )?;
                shards = new_shards;
                layout_shards = plan.shards;
                sink.on_event(&ObsEvent::Note {
                    name: "repartition",
                    k,
                    value: plan.shards as u64,
                });
                iter_delta = moved;
            } else if let Some(pool) = &pool {
                // Adaptive admission: re-divide the pool's frames in
                // proportion to the live |R_{k-1}| each shard carries
                // into this iteration. Runs on this thread between
                // parallel phases, so charged accesses stay
                // deterministic; the moved frames are the iteration's
                // steal count.
                if shards.len() > 1 {
                    let live_weights: Vec<u64> =
                        shards.iter().map(|sh| sh.r_prev.n_records().max(1)).collect();
                    let moved = pool.rebalance(&live_weights);
                    sink.on_event(&ObsEvent::Note { name: "pool_rebalance", k, value: moved });
                    iter_delta.pool_steals += moved;
                    retired.pool_steals += moved;
                }
            }

            // Figure 4 replays the loop-top sort literally when the plan
            // does not reuse the standing (trans_id, items) order; the
            // previous iteration's closing ORDER BY makes it the
            // identity, so results never depend on this bit.
            let resort = !plan.reuse_sort;
            let item_key: Vec<usize> = (1..=k).collect();

            let (c_k, r_tuples, r_kbytes, r_prime_total) = if shards.len() == 1 {
                // The paper's fused sequential pipeline: C_k and R_k come
                // from one counting pass (C_k kept in memory per Section
                // 4.3's accounting).
                let sh = &mut shards[0];
                let sorted_prime = sh.extend_sorted(k, resort, plan.join, sort_opts, cc)?;
                let scan = count_sorted_groups(&sorted_prime, &item_key, min_count, true)?;
                sorted_prime.free()?;
                let c_k = scan.counts;
                let r_k = scan.filtered.expect("filter output requested");
                let r_k = order_by_tid_items(r_k, k, sort_opts)?;
                let (n, bytes) = (r_k.n_records(), r_k.data_bytes());
                sh.install_r_prev(r_k)?;
                (c_k, n, bytes as f64 / 1024.0, sh.r_prime_tuples)
            } else {
                // Decoupled parallel pipeline: threshold-free local
                // counts, global k-way merge, per-shard filter.
                run_on_shards(&mut shards, |sh| sh.phase1(k, resort, plan.join, sort_opts, cc))?;
                let locals = take_local_counts(&mut shards);
                let c_k = CountRelation::merge_sum_filter(&locals, min_count);
                let r_prime_total: u64 = shards.iter().map(|sh| sh.r_prime_tuples).sum();
                let c_ref = &c_k;
                run_on_shards(&mut shards, |sh| sh.filter(k, c_ref, sort_opts))?;
                let n: u64 = shards.iter().map(|sh| sh.r_prev.n_records()).sum();
                let bytes: u64 = shards.iter().map(|sh| sh.r_prev.data_bytes()).sum();
                (c_k, n, bytes as f64 / 1024.0, r_prime_total)
            };
            let pruned: u64 = shards.iter().map(|sh| sh.pruned_pairs).sum();

            let delta = iter_delta.plus(&sum_deltas(&mut shards));
            trace.push(IterationTrace {
                k,
                r_prime_tuples: r_prime_total,
                r_tuples,
                r_kbytes,
                c_len: c_k.len() as u64,
                page_accesses: delta.accesses(),
                estimated_io_ms: delta.estimated_ms(&cost_model),
                cache_hits: delta.cache_hits,
                pool_steals: delta.pool_steals,
                candidates_pruned: pruned,
                plan: Some(plan),
            });
            sink.on_event(&ObsEvent::Iteration(trace[trace.len() - 1].snapshot()));

            r_prev_tuples = r_tuples;
            c_prev_len = c_k.len() as u64;
            let done = r_tuples == 0 || k >= max_len;
            if !c_k.is_empty() {
                counts.push(c_k);
            }
            if done {
                for sh in &mut shards {
                    sh.free_prev()?;
                }
                break;
            }
        }
    }

    // Every charged access was returned by exactly one `take_delta` and
    // attributed to exactly one trace row, so the total is the sum of
    // the per-iteration deltas by construction.
    let mut total = retired;
    for sh in &shards {
        total = total.plus(&sh.measured);
    }
    let effective_frames: usize = shards.iter().map(|sh| sh.pager.lock().cache_frames()).sum();
    Ok(EngineRun {
        result: SetmResult {
            counts,
            trace,
            n_transactions: n_txns,
            min_support_count: min_count,
        },
        total_page_accesses: total.accesses(),
        total_estimated_ms: total.estimated_ms(&cost_model),
        io: total,
        cache_frames: effective_frames,
    })
}

/// Lay `SALES` out across `n_shards` contiguous `trans_id` ranges
/// balanced by row count, one pager per shard. The load itself is
/// excluded from the meter (the paper's accounting starts with the data
/// resident). Shard pagers either attach weighted regions of the shared
/// pool or get private [`split_frames_evenly`] cache slices — both grant
/// every configured frame (the old `cache_frames / n` dropped the
/// remainder on the floor).
fn build_shards(
    dataset: &Dataset,
    weights: &[usize],
    n_shards: usize,
    config: &EngineConfig,
    pool: Option<&BufferPool>,
) -> Result<Vec<EngineShard>> {
    let ranges = partition_by_weight(weights, n_shards);
    let range_weights: Vec<u64> = ranges
        .iter()
        .map(|r| weights[r.clone()].iter().map(|&w| w as u64).sum())
        .collect();
    let mut pool_handles: Vec<_> = match pool {
        Some(pool) => pool.attach_weighted(&range_weights).into_iter().map(Some).collect(),
        None => (0..ranges.len()).map(|_| None).collect(),
    };
    let private_frames = split_frames_evenly(config.cache_frames, &range_weights);
    let mut shards: Vec<EngineShard> = Vec::with_capacity(ranges.len());
    let mut txns = dataset.transactions();
    for (i, range) in ranges.iter().enumerate() {
        let pager = Pager::shared();
        match pool_handles[i].take() {
            Some(handle) => pager.lock().attach_pool(handle),
            None => pager.lock().set_cache_frames(private_frames[i]),
        }
        let mut rows: Vec<[u32; 2]> = Vec::new();
        for (tid, items) in txns.by_ref().take(range.len()) {
            rows.extend(items.iter().map(|&it| [tid, it]));
        }
        let sales = HeapFile::from_rows(pager.clone(), 2, rows.iter().map(|r| r.as_slice()))?;
        pager.lock().reset_stats();
        let last_stats = pager.lock().stats();
        shards.push(EngineShard {
            pager,
            r_prev: sales.clone(),
            sales,
            index: None,
            last_stats,
            measured: IoStats::default(),
            sorted_prime: None,
            local_counts: CountRelation::new(1),
            r_prime_tuples: 0,
            pruned_pairs: 0,
        });
    }
    Ok(shards)
}

/// Move to a new shard count: drain every shard's `R_{k-1}` (reads
/// charged), retire the old pagers into `retired`, rebuild the `SALES`
/// slices on fresh pagers (off-meter, like the initial load), and write
/// each new shard's `R_{k-1}` slice (writes charged). Returns the I/O
/// charged on the old pagers while draining, for attribution to the
/// current iteration; the redistribution writes land in the new shards'
/// next delta. `R_{k-1}` rows stay in global `(trans_id, items)` order.
fn repartition(
    dataset: &Dataset,
    weights: &[usize],
    mut old: Vec<EngineShard>,
    n_shards: usize,
    config: &EngineConfig,
    pool: Option<&BufferPool>,
    retired: &mut IoStats,
) -> Result<(IoStats, Vec<EngineShard>)> {
    let arity = old[0].r_prev.arity();
    let mut rows: Vec<Vec<u32>> = Vec::new();
    for sh in &mut old {
        let mut cursor = sh.r_prev.cursor();
        while let Some(row) = cursor.next_row()? {
            rows.push(row.to_vec());
        }
        sh.free_prev()?;
    }
    let mut moved = IoStats::default();
    for sh in &mut old {
        moved = moved.plus(&sh.take_delta());
        *retired = retired.plus(&sh.measured);
    }
    // Dropping the old shards detaches their pool regions, so the whole
    // frame budget is back in the free reserve before the new layout
    // attaches.
    drop(old);

    let mut shards = build_shards(dataset, weights, n_shards, config, pool)?;
    let ranges = partition_by_weight(weights, n_shards);
    let tids: Vec<u32> = dataset.transactions().map(|(tid, _)| tid).collect();
    let mut ri = 0usize;
    let last_shard = shards.len() - 1;
    for (i, (sh, range)) in shards.iter_mut().zip(&ranges).enumerate() {
        let hi = range.end.checked_sub(1).map(|e| tids[e]);
        let mut b = HeapFileBuilder::new(sh.pager.clone(), arity);
        while ri < rows.len() {
            let in_range = i == last_shard || matches!(hi, Some(h) if rows[ri][0] <= h);
            if !in_range {
                break;
            }
            b.push(&rows[ri])?;
            ri += 1;
        }
        let r_prev = b.finish()?;
        sh.free_prev()?;
        sh.r_prev = r_prev;
    }
    Ok((moved, shards))
}

/// The paper's closing step: ORDER BY (trans_id, item_1, .., item_k).
fn order_by_tid_items(r_k: HeapFile, k: usize, sort_opts: SortOptions) -> Result<HeapFile> {
    if r_k.n_records() == 0 {
        return Ok(r_k);
    }
    let key: Vec<usize> = (0..=k).collect();
    let sorted = external_sort(&r_k, &key, sort_opts)?;
    r_k.free()?;
    Ok(sorted)
}

/// One `trans_id` shard: its own simulated disk, its slice of `SALES`,
/// its `R_{k-1}`, the optional probe index, and per-iteration outputs.
struct EngineShard {
    pager: SharedPager,
    sales: HeapFile,
    /// Lazily built `(trans_id, item)` B+-tree over the local `SALES`,
    /// for nested-loop plans. Kept for the rest of the run once built.
    index: Option<SalesIndex>,
    r_prev: HeapFile,
    last_stats: IoStats,
    /// Sum of every delta this shard has reported — its contribution to
    /// the run total.
    measured: IoStats,
    /// Items-sorted `R'_k` awaiting the global filter (parallel plan).
    sorted_prime: Option<HeapFile>,
    /// Local (threshold-free) group counts of `sorted_prime`.
    local_counts: CountRelation,
    r_prime_tuples: u64,
    /// Candidate pairs the constraint pushdown rejected inside this
    /// shard's extension join, re-assigned every iteration.
    pruned_pairs: u64,
}

impl EngineShard {
    /// k = 1 on a multi-shard layout: sort the local `SALES` on item and
    /// count every item group (the threshold applies only to the merged
    /// global counts).
    fn count_items(&mut self, sort_opts: SortOptions) -> Result<()> {
        let by_item = external_sort(&self.sales, &[1], sort_opts)?;
        self.local_counts = count_sorted_groups(&by_item, &[1], 1, false)?.counts;
        by_item.free()
    }

    /// Build the probe index on first use. The build cost is excluded
    /// from the meter (the paper's Section 3 assumes the indices already
    /// exist, "maintained as part of normal operation"); every probe
    /// against it is charged.
    fn ensure_index(&mut self) -> Result<&SalesIndex> {
        if self.index.is_none() {
            let before = self.pager.lock().stats();
            let built = SalesIndex::build(&self.sales)?;
            let after = self.pager.lock().stats();
            self.last_stats = self.last_stats.plus(&after.since(&before));
            self.index = Some(built);
        }
        Ok(self.index.as_ref().expect("just built"))
    }

    /// (Re)sort `R_{k-1}`, run the plan's extension join against the
    /// local `SALES`, and return `R'_k` sorted on its item columns.
    /// Leaves `r_prev` pointing at `SALES` as a placeholder until the
    /// filter step installs `R_k`.
    fn extend_sorted(
        &mut self,
        k: usize,
        resort: bool,
        join: JoinStrategy,
        sort_opts: SortOptions,
        cc: &CompiledConstraints,
    ) -> Result<HeapFile> {
        let k_prev = k - 1;
        if resort {
            let key: Vec<usize> = (0..=k_prev).collect();
            let sorted = external_sort(&self.r_prev, &key, sort_opts)?;
            self.free_prev()?;
            self.r_prev = sorted;
        }
        self.pruned_pairs = 0;
        let r_prime = match (join, cc.is_empty()) {
            (JoinStrategy::MergeScan, true) => merge_scan_join(
                &self.r_prev,
                &self.sales,
                &[0],
                &[0],
                k + 1,
                |l, r| r[1] > l[k_prev],
                |l, r, out| {
                    out.extend_from_slice(l);
                    out.push(r[1]);
                },
            )?,
            (JoinStrategy::MergeScan, false) => {
                // Constraint pushdown inside the join predicate: a pair
                // that passes the paper's `item > last` test but fails
                // the compiled constraints is counted and dropped before
                // it can reach R'_k. The k = 2 prefix check covers the
                // unfiltered R_1 side; later R_{k-1} are clean because
                // they were filtered against the anchored C_{k-1}.
                let check_prefix = k_prev == 1;
                let pruned = std::cell::Cell::new(0u64);
                let out = merge_scan_join(
                    &self.r_prev,
                    &self.sales,
                    &[0],
                    &[0],
                    k + 1,
                    |l, r| {
                        if r[1] <= l[k_prev] {
                            return false;
                        }
                        if (check_prefix && !cc.allows_at(0, l[1]))
                            || !cc.allows_at(k_prev, r[1])
                        {
                            pruned.set(pruned.get() + 1);
                            return false;
                        }
                        true
                    },
                    |l, r, out| {
                        out.extend_from_slice(l);
                        out.push(r[1]);
                    },
                )?;
                self.pruned_pairs = pruned.get();
                out
            }
            (JoinStrategy::NestedLoop, true) => {
                self.ensure_index()?;
                let index = self.index.as_ref().expect("ensured");
                index.extend_join(&self.r_prev, k)?
            }
            (JoinStrategy::NestedLoop, false) => {
                self.ensure_index()?;
                let index = self.index.as_ref().expect("ensured");
                let (out, pruned) = index.extend_join_constrained(&self.r_prev, k, cc)?;
                self.pruned_pairs = pruned;
                out
            }
        };
        self.free_prev()?;
        self.r_prev = self.sales.clone(); // placeholder until R_k lands
        let item_key: Vec<usize> = (1..=k).collect();
        let sorted_prime = external_sort(&r_prime, &item_key, sort_opts)?;
        self.r_prime_tuples = r_prime.n_records();
        r_prime.free()?;
        Ok(sorted_prime)
    }

    /// Parallel-plan phase 1: extension join, item sort, local count.
    fn phase1(
        &mut self,
        k: usize,
        resort: bool,
        join: JoinStrategy,
        sort_opts: SortOptions,
        cc: &CompiledConstraints,
    ) -> Result<()> {
        let sorted_prime = self.extend_sorted(k, resort, join, sort_opts, cc)?;
        let item_key: Vec<usize> = (1..=k).collect();
        self.local_counts = count_sorted_groups(&sorted_prime, &item_key, 1, false)?.counts;
        self.sorted_prime = Some(sorted_prime);
        Ok(())
    }

    /// Parallel-plan phase 2: filter the local `R'_k` against the global
    /// `C_k`, then ORDER BY (trans_id, items) as the paper's loop does.
    fn filter(&mut self, k: usize, c_k: &CountRelation, sort_opts: SortOptions) -> Result<()> {
        let sorted_prime = self.sorted_prime.take().expect("phase 1 ran");
        let r_k = filter_by_counts(&sorted_prime, c_k)?;
        sorted_prime.free()?;
        let r_k = order_by_tid_items(r_k, k, sort_opts)?;
        self.install_r_prev(r_k)
    }

    /// Install the iteration's `R_k` as the next `R_{k-1}`.
    fn install_r_prev(&mut self, r_k: HeapFile) -> Result<()> {
        self.free_prev()?;
        self.r_prev = r_k;
        Ok(())
    }

    fn free_prev(&mut self) -> Result<()> {
        if self.r_prev.file_id() != self.sales.file_id() {
            self.r_prev.clone().free()?;
        }
        Ok(())
    }

    /// Stats delta since the last call, for per-iteration attribution;
    /// accumulated into `measured` so the run total is exactly the sum
    /// of the attributed deltas.
    fn take_delta(&mut self) -> IoStats {
        let stats = self.pager.lock().stats();
        let delta = stats.since(&self.last_stats);
        self.last_stats = stats;
        self.measured = self.measured.plus(&delta);
        delta
    }
}

/// Run `f` on every shard, one scoped worker thread per shard, and
/// propagate the first error.
fn run_on_shards<F>(shards: &mut [EngineShard], f: F) -> Result<()>
where
    F: Fn(&mut EngineShard) -> Result<()> + Sync,
{
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = shards.iter_mut().map(|sh| s.spawn(move || f(sh))).collect();
        for h in handles {
            h.join().expect("engine shard worker panicked")?;
        }
        Ok(())
    })
}

fn take_local_counts(shards: &mut [EngineShard]) -> Vec<CountRelation> {
    shards
        .iter_mut()
        .map(|sh| std::mem::replace(&mut sh.local_counts, CountRelation::new(1)))
        .collect()
}

fn sum_deltas(shards: &mut [EngineShard]) -> IoStats {
    shards.iter_mut().map(|sh| sh.take_delta()).fold(IoStats::default(), |acc, d| acc.plus(&d))
}

/// Retain the rows of an items-sorted pattern file whose pattern appears
/// in `c_k`. Both sides are pattern-sorted, so membership is one monotone
/// merge cursor — no binary search per row.
fn filter_by_counts(file: &HeapFile, c_k: &CountRelation) -> Result<HeapFile> {
    let mut b = HeapFileBuilder::new(file.pager().clone(), file.arity());
    let mut cursor = file.cursor();
    let mut ci = 0usize;
    while let Some(row) = cursor.next_row()? {
        let pattern = &row[1..];
        while ci < c_k.len() && c_k.pattern_at(ci) < pattern {
            ci += 1;
        }
        if ci < c_k.len() && c_k.pattern_at(ci) == pattern {
            b.push(row)?;
        }
    }
    b.finish()
}

/// Result of one counting pass over a group-sorted file.
struct GroupScan {
    /// The count relation over the group columns (threshold applied).
    counts: CountRelation,
    /// Rows of supported groups, when requested.
    filtered: Option<HeapFile>,
    /// Largest number of rows the group buffer ever held. Bounded by
    /// `min_count − 1`: once a group provably qualifies, its remaining
    /// rows stream straight to the output instead of accumulating.
    /// Asserted by the hot-group regression test.
    #[cfg_attr(not(test), allow(dead_code))]
    peak_group_buffer_rows: u64,
}

/// One pass over a group-sorted file: produce the count relation over the
/// `group_cols` and (when `build_filtered` and the file has a tid column)
/// the filtered `R_k` containing rows of supported groups.
///
/// Memory is bounded regardless of group size: rows buffer only until the
/// group's count reaches `min_count` — from then on they are streamed to
/// the output — so a single hot itemset cannot blow the memory budget.
fn count_sorted_groups(
    file: &HeapFile,
    group_cols: &[usize],
    min_count: u64,
    build_filtered: bool,
) -> Result<GroupScan> {
    let k = group_cols.len();
    let arity = file.arity();
    let mut c = CountRelation::new(k);
    let wants_filter = build_filtered && arity == k + 1;
    let mut filtered =
        if wants_filter { Some(HeapFileBuilder::new(file.pager().clone(), arity)) } else { None };

    let mut cursor = file.cursor();
    let mut current: Vec<u32> = Vec::with_capacity(k);
    let mut group_rows: Vec<u32> = Vec::new();
    let mut count: u64 = 0;
    let mut peak: u64 = 0;

    while let Some(row) = cursor.next_row()? {
        let same =
            count > 0 && group_cols.iter().enumerate().all(|(i, &col)| row[col] == current[i]);
        if !same {
            if count >= min_count {
                c.push(&current, count);
            }
            current.clear();
            current.extend(group_cols.iter().map(|&col| row[col]));
            count = 0;
            group_rows.clear();
        }
        count += 1;
        if let Some(b) = filtered.as_mut() {
            if count >= min_count {
                // The group qualifies: flush anything buffered, then
                // stream every further row directly.
                for r in group_rows.chunks_exact(arity) {
                    b.push(r)?;
                }
                group_rows.clear();
                b.push(row)?;
            } else {
                group_rows.extend_from_slice(row);
                peak = peak.max((group_rows.len() / arity) as u64);
            }
        }
    }
    if count >= min_count {
        c.push(&current, count);
    }
    let filtered = match filtered {
        Some(b) => Some(b.finish()?),
        None => None,
    };
    Ok(GroupScan { counts: c, filtered, peak_group_buffer_rows: peak })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, MinSupport, MiningParams};
    use crate::example;
    use crate::setm::memory;

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    #[test]
    fn engine_matches_memory_on_worked_example() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let mem = memory::mine(&d, &params);
        let eng = mine_with(&d, &params, cfg(), 0).unwrap();
        assert_eq!(eng.result.frequent_itemsets(), mem.frequent_itemsets());
        assert_eq!(eng.result.max_pattern_len(), 3);
        // Tuple counts per iteration agree too.
        for (a, b) in mem.trace.iter().zip(eng.result.trace.iter()) {
            assert_eq!(a.k, b.k);
            assert_eq!(a.r_prime_tuples, b.r_prime_tuples);
            assert_eq!(a.r_tuples, b.r_tuples);
            assert_eq!(a.c_len, b.c_len);
        }
    }

    #[test]
    fn engine_charges_io() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let eng = mine_with(&d, &params, cfg(), 0).unwrap();
        assert!(eng.total_page_accesses > 0);
        assert!(eng.total_estimated_ms > 0.0);
        // Each iteration carries its own accesses; they sum to the total.
        let sum: u64 = eng.result.trace.iter().map(|t| t.page_accesses).sum();
        assert_eq!(sum, eng.total_page_accesses);
    }

    #[test]
    fn parallel_engine_charges_io_consistently() {
        let txns: Vec<(u32, Vec<u32>)> =
            (0..300).map(|t| (t, vec![1, 2, 3, 4 + (t % 4)])).collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let run = mine_with(&d, &params, cfg(), 3).unwrap();
        assert!(run.total_page_accesses > 0);
        let sum: u64 = run.result.trace.iter().map(|t| t.page_accesses).sum();
        assert_eq!(sum, run.total_page_accesses);
    }

    /// Sequential and sharded engine runs agree — itemsets, counts, and
    /// the tuple-count trace series — for every shard count.
    #[test]
    fn sharded_engine_matches_sequential_exactly() {
        let txns: Vec<(u32, Vec<u32>)> = (0..80u32)
            .map(|t| {
                let mut items = vec![1, 2, 3];
                if t % 3 == 0 {
                    items.extend([10, 11]);
                }
                (t + 1, items)
            })
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let seq = mine_with(&d, &params, cfg(), 1).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let par = mine_with(&d, &params, cfg(), threads).unwrap();
            assert_eq!(
                par.result.frequent_itemsets(),
                seq.result.frequent_itemsets(),
                "threads={threads}"
            );
            assert_eq!(par.result.trace.len(), seq.result.trace.len());
            for (a, b) in seq.result.trace.iter().zip(par.result.trace.iter()) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.r_prime_tuples, b.r_prime_tuples, "threads={threads} k={}", a.k);
                assert_eq!(a.r_tuples, b.r_tuples, "threads={threads} k={}", a.k);
                assert_eq!(a.c_len, b.c_len, "threads={threads} k={}", a.k);
            }
        }
    }

    #[test]
    fn sort_tracking_saves_sort_passes() {
        // A dataset big enough that R_2 spans multiple pages.
        let txns: Vec<(u32, Vec<u32>)> = (0..400)
            .map(|t| (t, vec![1, 2, 3, 4 + (t % 3)]))
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let tracked =
            mine_with(&d, &params, EngineConfig { track_sort_order: true, ..cfg() }, 1).unwrap();
        let naive =
            mine_with(&d, &params, EngineConfig { track_sort_order: false, ..cfg() }, 1).unwrap();
        assert_eq!(
            tracked.result.frequent_itemsets(),
            naive.result.frequent_itemsets(),
            "the optimization must not change results"
        );
        assert!(
            tracked.total_page_accesses < naive.total_page_accesses,
            "tracking sort order must save I/O: tracked={} naive={}",
            tracked.total_page_accesses,
            naive.total_page_accesses
        );
    }

    #[test]
    fn sort_tracking_saves_io_in_parallel_mode_too() {
        let txns: Vec<(u32, Vec<u32>)> = (0..400)
            .map(|t| (t, vec![1, 2, 3, 4 + (t % 3)]))
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let tracked =
            mine_with(&d, &params, EngineConfig { track_sort_order: true, ..cfg() }, 4).unwrap();
        let naive =
            mine_with(&d, &params, EngineConfig { track_sort_order: false, ..cfg() }, 4).unwrap();
        assert_eq!(tracked.result.frequent_itemsets(), naive.result.frequent_itemsets());
        assert!(tracked.total_page_accesses < naive.total_page_accesses);
    }

    #[test]
    fn buffer_cache_reduces_charged_io() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let cold =
            mine_with(&d, &params, EngineConfig { cache_frames: 0, ..cfg() }, 1).unwrap();
        let warm =
            mine_with(&d, &params, EngineConfig { cache_frames: 1024, ..cfg() }, 1).unwrap();
        assert_eq!(cold.result.frequent_itemsets(), warm.result.frequent_itemsets());
        assert!(warm.total_page_accesses <= cold.total_page_accesses);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_pairs(std::iter::empty());
        let params = MiningParams::new(MinSupport::Count(1), 0.5);
        let run = mine_with(&d, &params, cfg(), 0).unwrap();
        assert_eq!(run.result.max_pattern_len(), 0);
    }

    /// Every iteration of the planned loop records the plan it executed;
    /// the k = 1 count is unplanned.
    #[test]
    fn trace_records_the_executed_plan() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let run = mine_with(&d, &params, cfg(), 1).unwrap();
        assert_eq!(run.result.trace[0].plan, None);
        assert_eq!(run.result.trace[0].plan_string(), "-");
        for t in &run.result.trace[1..] {
            let plan = t.plan.expect("iterations k >= 2 carry a plan");
            assert!(plan.validate().is_ok());
            assert_eq!(t.plan_string(), plan.to_string());
        }
    }

    /// A forced nested-loop plan mines the identical result as the
    /// forced merge-scan plan — only the I/O shape moves (probes are
    /// random reads).
    #[test]
    fn forced_nested_loop_plan_matches_merge_scan_results() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        // Uncached: the I/O-shape assertion below is about the disk
        // access pattern, which a warm pool would absorb.
        let uncached = EngineConfig { cache_frames: 0, ..cfg() };
        let ms = mine_planned(
            &d,
            &params,
            uncached,
            1,
            PlanMode::Forced(PhysicalPlan::merge_scan()),
        )
        .unwrap();
        let nl = mine_planned(
            &d,
            &params,
            uncached,
            1,
            PlanMode::Forced(PhysicalPlan {
                join: JoinStrategy::NestedLoop,
                ..PhysicalPlan::merge_scan()
            }),
        )
        .unwrap();
        assert_eq!(nl.result.frequent_itemsets(), ms.result.frequent_itemsets());
        for (a, b) in ms.result.trace.iter().zip(nl.result.trace.iter()) {
            assert_eq!(a.r_prime_tuples, b.r_prime_tuples, "k={}", a.k);
            assert_eq!(a.r_tuples, b.r_tuples, "k={}", a.k);
            assert_eq!(a.c_len, b.c_len, "k={}", a.k);
        }
        assert!(nl.io.rand_reads > ms.io.rand_reads, "probes are random reads");
    }

    /// When the auto planner collapses a tiny residue to one shard
    /// mid-run, the engine repartitions: results still match the
    /// sequential run and the per-iteration deltas still sum to the
    /// total.
    #[test]
    fn midrun_shard_collapse_repartitions_consistently() {
        // 80 transactions of {1,2,3} plus a unique cold item each:
        // R_2 = 240 tuples (under a page at k = 3), so a 4-shard run
        // collapses to 1 shard from k = 3 on.
        let txns: Vec<(u32, Vec<u32>)> =
            (0..80u32).map(|t| (t, vec![1, 2, 3, 100 + t])).collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Count(40), 0.5);
        let seq = mine_with(&d, &params, cfg(), 1).unwrap();
        let par = mine_with(&d, &params, cfg(), 4).unwrap();
        assert_eq!(par.result.frequent_itemsets(), seq.result.frequent_itemsets());
        let k2 = par.result.trace[1].plan.unwrap();
        let k3 = par.result.trace[2].plan.unwrap();
        assert_eq!(k2.shards, 4, "full fan-out while R_1 is large");
        assert_eq!(k3.shards, 1, "page-sized residue collapses");
        let sum: u64 = par.result.trace.iter().map(|t| t.page_accesses).sum();
        assert_eq!(sum, par.total_page_accesses, "repartition I/O stays attributed");
    }

    /// Satellite regression: a single hot itemset must not accumulate its
    /// whole group in memory — the buffer is capped below `min_count`
    /// rows, after which rows stream straight to the filtered output.
    #[test]
    fn hot_group_buffer_is_capped_at_min_count() {
        let pager = Pager::shared();
        // One pattern {1,2} supported by 5,000 transactions (rows sorted
        // by items, then a small cold group behind it).
        let mut rows: Vec<[u32; 3]> = (0..5_000u32).map(|t| [t, 1, 2]).collect();
        rows.push([7, 1, 3]);
        let file = HeapFile::from_rows(pager, 3, rows.iter().map(|r| r.as_slice())).unwrap();
        let scan = count_sorted_groups(&file, &[1, 2], 5, true).unwrap();
        assert_eq!(scan.counts.get(&[1, 2]), Some(5_000));
        assert_eq!(scan.counts.get(&[1, 3]), None);
        let filtered = scan.filtered.unwrap();
        assert_eq!(filtered.n_records(), 5_000, "all hot-group rows kept");
        assert!(
            scan.peak_group_buffer_rows < 5,
            "group buffer must stay under min_count, held {} rows",
            scan.peak_group_buffer_rows
        );
    }

    #[test]
    fn capped_counting_matches_unfiltered_relation() {
        // The streamed filter output is identical to the old
        // buffer-everything behaviour: same rows, same order.
        let pager = Pager::shared();
        let rows: Vec<[u32; 3]> = vec![
            [1, 1, 2],
            [2, 1, 2],
            [3, 1, 2],
            [1, 1, 3], // count 1 < 2: dropped
            [1, 2, 3],
            [2, 2, 3],
        ];
        let file = HeapFile::from_rows(pager, 3, rows.iter().map(|r| r.as_slice())).unwrap();
        let scan = count_sorted_groups(&file, &[1, 2], 2, true).unwrap();
        assert_eq!(
            scan.filtered.unwrap().rows().unwrap(),
            vec![vec![1, 1, 2], vec![2, 1, 2], vec![3, 1, 2], vec![1, 2, 3], vec![2, 2, 3]],
        );
        assert_eq!(scan.counts.len(), 2);
    }
}
