//! Algorithm SETM on the paged storage engine.
//!
//! The same loop as [`crate::setm::memory`], but every relation is a heap
//! file on a simulated disk and every sort, merge-scan, and filter goes
//! through `setm-relational` — so each iteration's page accesses are
//! measured and can be compared with the Section 4.3 formula. Differences
//! from the analytical bound are expected and documented: the paper
//! assumes pipelined sorts and free `C_k` handling, while this engine
//! materializes every intermediate (the bound's "2·Σ‖R'_i‖" becomes a
//! measured read+write per sort pass).
//!
//! The `track_sort_order` knob implements the Section 4.1 remark that the
//! final `ORDER BY` of the filter step makes the loop-top sort redundant
//! *if the optimizer tracks sort order across iterations*; switching it
//! off re-sorts `R_{k-1}` every iteration, exactly what a naive plan would
//! do. This is ablation E8.

use crate::data::{Dataset, MiningParams};
use crate::pattern::CountRelation;
use crate::setm::{IterationTrace, SetmResult};
use setm_relational::heap::{HeapFile, HeapFileBuilder};
use setm_relational::join::merge_scan_join;
use setm_relational::pager::Pager;
use setm_relational::sort::{external_sort, SortOptions};
use setm_relational::Result;

/// Execution knobs for the engine-backed run.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Workspace for the external sorts, in pages.
    pub sort_buffer_pages: usize,
    /// Buffer-cache frames (0 = every page access is charged, the
    /// worst-case accounting the paper's formulas use).
    pub cache_frames: usize,
    /// Track sort order across iterations (Section 4.1 optimization).
    /// When false, the loop-top sort re-sorts `R_{k-1}` even though the
    /// filter step's `ORDER BY` already ordered it.
    pub track_sort_order: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions { sort_buffer_pages: 256, cache_frames: 0, track_sort_order: true }
    }
}

/// Outcome of an engine run: the mining result (with per-iteration I/O in
/// the trace) plus the total page accesses.
#[derive(Debug)]
pub struct EngineRun {
    pub result: SetmResult,
    /// Total page accesses during mining (loading `SALES` excluded).
    pub total_page_accesses: u64,
    /// Estimated milliseconds under the pager's cost model.
    pub total_estimated_ms: f64,
}

/// Mine `dataset` on a fresh paged engine.
pub fn mine_on_engine(
    dataset: &Dataset,
    params: &MiningParams,
    opts: EngineOptions,
) -> Result<EngineRun> {
    let pager = Pager::shared();
    pager.borrow_mut().set_cache_frames(opts.cache_frames);
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);
    let sort_opts = SortOptions { buffer_pages: opts.sort_buffer_pages };

    // Load SALES (already in (tid, item) order), then start the meter.
    let sales_rows = dataset.sales_rows();
    let sales = HeapFile::from_rows(pager.clone(), 2, sales_rows.iter().map(|r| r.as_slice()))?;
    pager.borrow_mut().reset_stats();

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();
    let mut last_stats = pager.borrow().stats();

    // k = 1: sort R1 on item; C1 := generate counts from R1.
    let by_item = external_sort(&sales, &[1], sort_opts)?;
    let c1 = count_sorted_groups(&by_item, &[1], min_count)?.0;
    by_item.free()?;
    let stats = pager.borrow().stats();
    let delta = stats.since(&last_stats);
    last_stats = stats;
    trace.push(IterationTrace {
        k: 1,
        r_prime_tuples: sales.n_records(),
        r_tuples: sales.n_records(),
        r_kbytes: sales.data_bytes() as f64 / 1024.0,
        c_len: c1.len() as u64,
        page_accesses: delta.accesses(),
        estimated_io_ms: delta.estimated_ms(&pager.borrow().cost_model()),
    });
    if !c1.is_empty() {
        counts.push(c1);
    }

    let mut r_prev = sales.clone();
    let mut prev_sorted_by_tid = true; // SALES arrives (tid, item)-sorted.
    let mut k = 1usize;
    if max_len > 1 && n_txns > 0 {
        loop {
            k += 1;
            let k_prev = k - 1;

            // sort R_{k-1} on (trans_id, item_1, .., item_{k-1}) — skipped
            // when the previous iteration's ORDER BY is tracked.
            if !prev_sorted_by_tid {
                let key: Vec<usize> = (0..=k_prev).collect();
                let sorted = external_sort(&r_prev, &key, sort_opts)?;
                free_unless_sales(&r_prev, &sales)?;
                r_prev = sorted;
            }

            // R'_k := merge-scan R_{k-1}, R_1  (q.item > p.item_{k-1}).
            let r_prime = merge_scan_join(
                &r_prev,
                &sales,
                &[0],
                &[0],
                k + 1,
                |l, r| r[1] > l[k_prev],
                |l, r, out| {
                    out.extend_from_slice(l);
                    out.push(r[1]);
                },
            )?;
            free_unless_sales(&r_prev, &sales)?;

            // sort R'_k on (item_1, .., item_k).
            let item_key: Vec<usize> = (1..=k).collect();
            let sorted_prime = external_sort(&r_prime, &item_key, sort_opts)?;
            let r_prime_tuples = r_prime.n_records();
            r_prime.free()?;

            // C_k := generate counts; R_k := filter R'_k (one fused pass,
            // C_k kept in memory per Section 4.3's accounting).
            let (c_k, r_k) = count_sorted_groups(&sorted_prime, &item_key, min_count)?;
            sorted_prime.free()?;
            let r_k = r_k.expect("filter output requested");

            // The paper's final step: ORDER BY (trans_id, item_1, ..,
            // item_k). Performed in both modes — the ablation is whether
            // the *next* iteration trusts it.
            let r_k = if r_k.n_records() > 0 {
                let key: Vec<usize> = (0..=k).collect();
                let sorted = external_sort(&r_k, &key, sort_opts)?;
                r_k.free()?;
                sorted
            } else {
                r_k
            };
            prev_sorted_by_tid = opts.track_sort_order;

            let stats = pager.borrow().stats();
            let delta = stats.since(&last_stats);
            last_stats = stats;
            trace.push(IterationTrace {
                k,
                r_prime_tuples,
                r_tuples: r_k.n_records(),
                r_kbytes: r_k.data_bytes() as f64 / 1024.0,
                c_len: c_k.len() as u64,
                page_accesses: delta.accesses(),
                estimated_io_ms: delta.estimated_ms(&pager.borrow().cost_model()),
            });

            let done = r_k.n_records() == 0 || k >= max_len;
            if !c_k.is_empty() {
                counts.push(c_k);
            }
            if done {
                r_k.free()?;
                break;
            }
            r_prev = r_k;
        }
    }

    let total = pager.borrow().stats();
    let total_ms = total.estimated_ms(&pager.borrow().cost_model());
    Ok(EngineRun {
        result: SetmResult {
            counts,
            trace,
            n_transactions: n_txns,
            min_support_count: min_count,
        },
        total_page_accesses: total.accesses(),
        total_estimated_ms: total_ms,
    })
}

fn free_unless_sales(file: &HeapFile, sales: &HeapFile) -> Result<()> {
    if file.file_id() != sales.file_id() {
        file.clone().free()?;
    }
    Ok(())
}

/// One pass over a group-sorted file: produce the count relation over the
/// `group_cols` and (when the file is a pattern relation, i.e. it has a
/// tid column) the filtered `R_k` containing rows of supported groups.
fn count_sorted_groups(
    file: &HeapFile,
    group_cols: &[usize],
    min_count: u64,
) -> Result<(CountRelation, Option<HeapFile>)> {
    let k = group_cols.len();
    let mut c = CountRelation::new(k);
    let wants_filter = file.arity() == k + 1;
    let mut filtered =
        if wants_filter { Some(HeapFileBuilder::new(file.pager().clone(), k + 1)) } else { None };

    let mut cursor = file.cursor();
    let mut current: Vec<u32> = Vec::with_capacity(k);
    let mut group_rows: Vec<u32> = Vec::new();
    let mut count: u64 = 0;
    let arity = file.arity();

    let flush = |key: &[u32],
                     count: u64,
                     group_rows: &[u32],
                     c: &mut CountRelation,
                     filtered: &mut Option<HeapFileBuilder>|
     -> Result<()> {
        if count >= min_count {
            c.push(key, count);
            if let Some(b) = filtered {
                for row in group_rows.chunks_exact(arity) {
                    b.push(row)?;
                }
            }
        }
        Ok(())
    };

    while let Some(row) = cursor.next_row()? {
        let same =
            count > 0 && group_cols.iter().enumerate().all(|(i, &col)| row[col] == current[i]);
        if same {
            count += 1;
        } else {
            if count > 0 {
                flush(&current, count, &group_rows, &mut c, &mut filtered)?;
            }
            current.clear();
            current.extend(group_cols.iter().map(|&col| row[col]));
            count = 1;
            group_rows.clear();
        }
        if wants_filter {
            group_rows.extend_from_slice(row);
        }
    }
    if count > 0 {
        flush(&current, count, &group_rows, &mut c, &mut filtered)?;
    }
    let filtered = match filtered {
        Some(b) => Some(b.finish()?),
        None => None,
    };
    Ok((c, filtered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, MinSupport, MiningParams};
    use crate::example;
    use crate::setm::memory;

    #[test]
    fn engine_matches_memory_on_worked_example() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let mem = memory::mine(&d, &params);
        let eng = mine_on_engine(&d, &params, EngineOptions::default()).unwrap();
        assert_eq!(eng.result.frequent_itemsets(), mem.frequent_itemsets());
        assert_eq!(eng.result.max_pattern_len(), 3);
        // Tuple counts per iteration agree too.
        for (a, b) in mem.trace.iter().zip(eng.result.trace.iter()) {
            assert_eq!(a.k, b.k);
            assert_eq!(a.r_prime_tuples, b.r_prime_tuples);
            assert_eq!(a.r_tuples, b.r_tuples);
            assert_eq!(a.c_len, b.c_len);
        }
    }

    #[test]
    fn engine_charges_io() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let eng = mine_on_engine(&d, &params, EngineOptions::default()).unwrap();
        assert!(eng.total_page_accesses > 0);
        assert!(eng.total_estimated_ms > 0.0);
        // Each iteration carries its own accesses; they sum to the total.
        let sum: u64 = eng.result.trace.iter().map(|t| t.page_accesses).sum();
        assert_eq!(sum, eng.total_page_accesses);
    }

    #[test]
    fn sort_tracking_saves_sort_passes() {
        // A dataset big enough that R_2 spans multiple pages.
        let txns: Vec<(u32, Vec<u32>)> = (0..400)
            .map(|t| (t, vec![1, 2, 3, 4 + (t % 3)]))
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let tracked = mine_on_engine(
            &d,
            &params,
            EngineOptions { track_sort_order: true, ..Default::default() },
        )
        .unwrap();
        let naive = mine_on_engine(
            &d,
            &params,
            EngineOptions { track_sort_order: false, ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            tracked.result.frequent_itemsets(),
            naive.result.frequent_itemsets(),
            "the optimization must not change results"
        );
        assert!(
            tracked.total_page_accesses < naive.total_page_accesses,
            "tracking sort order must save I/O: tracked={} naive={}",
            tracked.total_page_accesses,
            naive.total_page_accesses
        );
    }

    #[test]
    fn buffer_cache_reduces_charged_io() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let cold =
            mine_on_engine(&d, &params, EngineOptions { cache_frames: 0, ..Default::default() })
                .unwrap();
        let warm = mine_on_engine(
            &d,
            &params,
            EngineOptions { cache_frames: 1024, ..Default::default() },
        )
        .unwrap();
        assert_eq!(cold.result.frequent_itemsets(), warm.result.frequent_itemsets());
        assert!(warm.total_page_accesses <= cold.total_page_accesses);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_pairs(std::iter::empty());
        let params = MiningParams::new(MinSupport::Count(1), 0.5);
        let run = mine_on_engine(&d, &params, EngineOptions::default()).unwrap();
        assert_eq!(run.result.max_pattern_len(), 0);
    }
}
