//! Algorithm SETM on the paged storage engine.
//!
//! The same loop as [`crate::setm::memory`], but every relation is a heap
//! file on a simulated disk and every sort, merge-scan, and filter goes
//! through `setm-relational` — so each iteration's page accesses are
//! measured and can be compared with the Section 4.3 formula. Differences
//! from the analytical bound are expected and documented: the paper
//! assumes pipelined sorts and free `C_k` handling, while this engine
//! materializes every intermediate (the bound's "2·Σ‖R'_i‖" becomes a
//! measured read+write per sort pass).
//!
//! The `track_sort_order` knob implements the Section 4.1 remark that the
//! final `ORDER BY` of the filter step makes the loop-top sort redundant
//! *if the optimizer tracks sort order across iterations*; switching it
//! off re-sorts `R_{k-1}` every iteration, exactly what a naive plan would
//! do. This is ablation E8.
//!
//! # Parallel sharded execution
//!
//! With more than one worker thread (the `threads` argument of
//! [`mine_with`] / `Miner::threads`) the `SALES` relation is split into
//! contiguous `trans_id` shards, **each on its own pager** (its own
//! simulated disk — mirroring a disk-per-worker deployment). Every
//! iteration runs the sort → merge-scan → sort → local-count pipeline of
//! all shards in parallel under [`std::thread::scope`], merges the
//! per-shard counts into the global `C_k`
//! ([`CountRelation::merge_sum_filter`]), then filters each shard's
//! `R'_k` against it. Mined results and the tuple-count trace series are
//! identical to the sequential run; per-iteration `page_accesses` /
//! `estimated_io_ms` are the *sums* over all shard pagers (the parallel
//! plan pays one extra scan of each sorted `R'_k` for the decoupled
//! filter step, so its access totals differ from the sequential plan's —
//! wall-clock I/O time would divide by the number of disks).

use crate::data::{Dataset, MiningParams};
use crate::pattern::CountRelation;
use crate::setm::shard::{partition_by_weight, resolve_threads};
use crate::setm::{IterationTrace, SetmResult};
use setm_relational::heap::{HeapFile, HeapFileBuilder};
use setm_relational::join::merge_scan_join;
use setm_relational::pager::{IoStats, Pager, SharedPager};
use setm_relational::sort::{external_sort, SortOptions};
use setm_relational::Result;

/// Configuration of the paged-engine backend — what
/// [`crate::Backend::Engine`] carries. Worker threads are *not* part of
/// the backend configuration: they are an execution knob set on the
/// [`crate::Miner`] builder (or passed to [`mine_with`]) so the same
/// knob drives every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Workspace for the external sorts, in pages (a two-phase external
    /// sort needs at least 3).
    pub sort_buffer_pages: usize,
    /// Buffer-cache frames (0 = every page access is charged, the
    /// worst-case accounting the paper's formulas use). A parallel run
    /// divides the frame budget evenly across shard pagers.
    pub cache_frames: usize,
    /// Track sort order across iterations (Section 4.1 optimization).
    /// When false, the loop-top sort re-sorts `R_{k-1}` even though the
    /// filter step's `ORDER BY` already ordered it.
    pub track_sort_order: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { sort_buffer_pages: 256, cache_frames: 0, track_sort_order: true }
    }
}

/// Outcome of an engine run: the mining result (with per-iteration I/O in
/// the trace) plus the total page accesses.
#[derive(Debug)]
pub struct EngineRun {
    pub result: SetmResult,
    /// Total page accesses during mining (loading `SALES` excluded);
    /// summed over all shard pagers in a parallel run.
    pub total_page_accesses: u64,
    /// Estimated milliseconds under the pager's cost model.
    pub total_estimated_ms: f64,
    /// The full I/O breakdown behind `total_page_accesses` (sequential
    /// vs random reads/writes, cache hits), summed over shard pagers.
    pub io: IoStats,
}

/// Mine `dataset` on a fresh paged engine (one pager per shard).
///
/// `threads` = 0 resolves to the machine's available parallelism, 1
/// forces the paper's sequential plan; mined results are identical for
/// every value. This is the low-level execution function behind
/// [`crate::Backend::Engine`]; prefer driving it through the
/// [`crate::Miner`] facade, which validates inputs and returns the
/// shared [`crate::MiningOutcome`] / [`crate::SetmError`] types.
pub fn mine_with(
    dataset: &Dataset,
    params: &MiningParams,
    config: EngineConfig,
    threads: usize,
) -> Result<EngineRun> {
    let threads = resolve_threads(threads).min(dataset.n_transactions().max(1) as usize);
    if threads <= 1 {
        mine_sequential(dataset, params, config)
    } else {
        mine_sharded(dataset, params, config, threads)
    }
}

/// The paper's sequential plan on a single pager.
fn mine_sequential(
    dataset: &Dataset,
    params: &MiningParams,
    config: EngineConfig,
) -> Result<EngineRun> {
    let pager = Pager::shared();
    pager.lock().set_cache_frames(config.cache_frames);
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);
    let sort_opts = SortOptions { buffer_pages: config.sort_buffer_pages };

    // Load SALES (already in (tid, item) order), then start the meter.
    let sales_rows = dataset.sales_rows();
    let sales = HeapFile::from_rows(pager.clone(), 2, sales_rows.iter().map(|r| r.as_slice()))?;
    pager.lock().reset_stats();

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();
    let mut last_stats = pager.lock().stats();

    // k = 1: sort R1 on item; C1 := generate counts from R1. The paper
    // never filters the sales relation, so no filtered output is built.
    let by_item = external_sort(&sales, &[1], sort_opts)?;
    let c1 = count_sorted_groups(&by_item, &[1], min_count, false)?.counts;
    by_item.free()?;
    let stats = pager.lock().stats();
    let delta = stats.since(&last_stats);
    last_stats = stats;
    trace.push(IterationTrace {
        k: 1,
        r_prime_tuples: sales.n_records(),
        r_tuples: sales.n_records(),
        r_kbytes: sales.data_bytes() as f64 / 1024.0,
        c_len: c1.len() as u64,
        page_accesses: delta.accesses(),
        estimated_io_ms: delta.estimated_ms(&pager.lock().cost_model()),
    });
    if !c1.is_empty() {
        counts.push(c1);
    }

    let mut r_prev = sales.clone();
    let mut prev_sorted_by_tid = true; // SALES arrives (tid, item)-sorted.
    let mut k = 1usize;
    if max_len > 1 && n_txns > 0 {
        loop {
            k += 1;
            let k_prev = k - 1;

            // sort R_{k-1} on (trans_id, item_1, .., item_{k-1}) — skipped
            // when the previous iteration's ORDER BY is tracked.
            if !prev_sorted_by_tid {
                let key: Vec<usize> = (0..=k_prev).collect();
                let sorted = external_sort(&r_prev, &key, sort_opts)?;
                free_unless_sales(&r_prev, &sales)?;
                r_prev = sorted;
            }

            // R'_k := merge-scan R_{k-1}, R_1  (q.item > p.item_{k-1}).
            let r_prime = merge_scan_join(
                &r_prev,
                &sales,
                &[0],
                &[0],
                k + 1,
                |l, r| r[1] > l[k_prev],
                |l, r, out| {
                    out.extend_from_slice(l);
                    out.push(r[1]);
                },
            )?;
            free_unless_sales(&r_prev, &sales)?;

            // sort R'_k on (item_1, .., item_k).
            let item_key: Vec<usize> = (1..=k).collect();
            let sorted_prime = external_sort(&r_prime, &item_key, sort_opts)?;
            let r_prime_tuples = r_prime.n_records();
            r_prime.free()?;

            // C_k := generate counts; R_k := filter R'_k (one fused pass,
            // C_k kept in memory per Section 4.3's accounting).
            let scan = count_sorted_groups(&sorted_prime, &item_key, min_count, true)?;
            sorted_prime.free()?;
            let c_k = scan.counts;
            let r_k = scan.filtered.expect("filter output requested");

            // The paper's final step: ORDER BY (trans_id, item_1, ..,
            // item_k). Performed in both modes — the ablation is whether
            // the *next* iteration trusts it.
            let r_k = if r_k.n_records() > 0 {
                let key: Vec<usize> = (0..=k).collect();
                let sorted = external_sort(&r_k, &key, sort_opts)?;
                r_k.free()?;
                sorted
            } else {
                r_k
            };
            prev_sorted_by_tid = config.track_sort_order;

            let stats = pager.lock().stats();
            let delta = stats.since(&last_stats);
            last_stats = stats;
            trace.push(IterationTrace {
                k,
                r_prime_tuples,
                r_tuples: r_k.n_records(),
                r_kbytes: r_k.data_bytes() as f64 / 1024.0,
                c_len: c_k.len() as u64,
                page_accesses: delta.accesses(),
                estimated_io_ms: delta.estimated_ms(&pager.lock().cost_model()),
            });

            let done = r_k.n_records() == 0 || k >= max_len;
            if !c_k.is_empty() {
                counts.push(c_k);
            }
            if done {
                r_k.free()?;
                break;
            }
            r_prev = r_k;
        }
    }

    let total = pager.lock().stats();
    let total_ms = total.estimated_ms(&pager.lock().cost_model());
    Ok(EngineRun {
        result: SetmResult {
            counts,
            trace,
            n_transactions: n_txns,
            min_support_count: min_count,
        },
        total_page_accesses: total.accesses(),
        total_estimated_ms: total_ms,
        io: total,
    })
}

/// One `trans_id` shard of the parallel engine run: its own simulated
/// disk, its slice of `SALES`, its `R_{k-1}`, and per-iteration outputs.
struct EngineShard {
    pager: SharedPager,
    sales: HeapFile,
    r_prev: HeapFile,
    last_stats: IoStats,
    /// Items-sorted `R'_k` awaiting the global filter.
    sorted_prime: Option<HeapFile>,
    /// Local (threshold-free) group counts of `sorted_prime`.
    local_counts: CountRelation,
    r_prime_tuples: u64,
}

impl EngineShard {
    /// k = 1: sort the local `SALES` on item and count every item group
    /// (the threshold applies only to the merged global counts).
    fn count_items(&mut self, sort_opts: SortOptions) -> Result<()> {
        let by_item = external_sort(&self.sales, &[1], sort_opts)?;
        self.local_counts = count_sorted_groups(&by_item, &[1], 1, false)?.counts;
        by_item.free()
    }

    /// Iteration phase 1: (re)sort `R_{k-1}`, merge-scan against the
    /// local `SALES`, sort `R'_k` on items, count its groups locally.
    fn extend_and_count(
        &mut self,
        k: usize,
        resort_prev: bool,
        sort_opts: SortOptions,
    ) -> Result<()> {
        let k_prev = k - 1;
        if resort_prev {
            let key: Vec<usize> = (0..=k_prev).collect();
            let sorted = external_sort(&self.r_prev, &key, sort_opts)?;
            self.free_prev()?;
            self.r_prev = sorted;
        }
        let r_prime = merge_scan_join(
            &self.r_prev,
            &self.sales,
            &[0],
            &[0],
            k + 1,
            |l, r| r[1] > l[k_prev],
            |l, r, out| {
                out.extend_from_slice(l);
                out.push(r[1]);
            },
        )?;
        self.free_prev()?;
        self.r_prev = self.sales.clone(); // placeholder until the filter installs R_k
        let item_key: Vec<usize> = (1..=k).collect();
        let sorted_prime = external_sort(&r_prime, &item_key, sort_opts)?;
        self.r_prime_tuples = r_prime.n_records();
        r_prime.free()?;
        self.local_counts = count_sorted_groups(&sorted_prime, &item_key, 1, false)?.counts;
        self.sorted_prime = Some(sorted_prime);
        Ok(())
    }

    /// Iteration phase 2: filter the local `R'_k` against the global
    /// `C_k`, then ORDER BY (trans_id, items) as the paper's loop does.
    fn filter(&mut self, k: usize, c_k: &CountRelation, sort_opts: SortOptions) -> Result<()> {
        let sorted_prime = self.sorted_prime.take().expect("phase 1 ran");
        let r_k = filter_by_counts(&sorted_prime, c_k)?;
        sorted_prime.free()?;
        let r_k = if r_k.n_records() > 0 {
            let key: Vec<usize> = (0..=k).collect();
            let sorted = external_sort(&r_k, &key, sort_opts)?;
            r_k.free()?;
            sorted
        } else {
            r_k
        };
        self.r_prev = r_k;
        Ok(())
    }

    fn free_prev(&mut self) -> Result<()> {
        if self.r_prev.file_id() != self.sales.file_id() {
            self.r_prev.clone().free()?;
        }
        Ok(())
    }

    /// Stats delta since the last call, for per-iteration attribution.
    fn take_delta(&mut self) -> IoStats {
        let stats = self.pager.lock().stats();
        let delta = stats.since(&self.last_stats);
        self.last_stats = stats;
        delta
    }
}

/// The sharded parallel plan: one pager per shard, scoped worker threads
/// per iteration phase, global counts by k-way merge.
fn mine_sharded(
    dataset: &Dataset,
    params: &MiningParams,
    config: EngineConfig,
    threads: usize,
) -> Result<EngineRun> {
    let n_txns = dataset.n_transactions();
    let min_count = params.min_support.to_count(n_txns.max(1));
    let max_len = params.max_pattern_len.unwrap_or(usize::MAX);
    let sort_opts = SortOptions { buffer_pages: config.sort_buffer_pages };

    // Contiguous trans_id ranges balanced by row count.
    let weights: Vec<usize> = dataset.transactions().map(|(_, items)| items.len()).collect();
    let ranges = partition_by_weight(&weights, threads);
    let frames_per_shard = config.cache_frames / ranges.len();

    let mut shards: Vec<EngineShard> = Vec::with_capacity(ranges.len());
    let mut txns = dataset.transactions();
    for range in &ranges {
        let pager = Pager::shared();
        pager.lock().set_cache_frames(frames_per_shard);
        let mut rows: Vec<[u32; 2]> = Vec::new();
        for (tid, items) in txns.by_ref().take(range.len()) {
            rows.extend(items.iter().map(|&it| [tid, it]));
        }
        let sales =
            HeapFile::from_rows(pager.clone(), 2, rows.iter().map(|r| r.as_slice()))?;
        pager.lock().reset_stats();
        let last_stats = pager.lock().stats();
        shards.push(EngineShard {
            pager,
            r_prev: sales.clone(),
            sales,
            last_stats,
            sorted_prime: None,
            local_counts: CountRelation::new(1),
            r_prime_tuples: 0,
        });
    }

    let mut counts: Vec<CountRelation> = Vec::new();
    let mut trace: Vec<IterationTrace> = Vec::new();
    let cost_model = shards[0].pager.lock().cost_model();

    // k = 1 (parallel): local item counts, merged under the threshold.
    run_on_shards(&mut shards, |sh| sh.count_items(sort_opts))?;
    let locals = take_local_counts(&mut shards);
    let c1 = CountRelation::merge_sum_filter(&locals, min_count);
    let total_rows: u64 = shards.iter().map(|sh| sh.sales.n_records()).sum();
    let delta = sum_deltas(&mut shards);
    trace.push(IterationTrace {
        k: 1,
        r_prime_tuples: total_rows,
        r_tuples: total_rows,
        r_kbytes: shards.iter().map(|sh| sh.sales.data_bytes()).sum::<u64>() as f64 / 1024.0,
        c_len: c1.len() as u64,
        page_accesses: delta.accesses(),
        estimated_io_ms: delta.estimated_ms(&cost_model),
    });
    if !c1.is_empty() {
        counts.push(c1);
    }

    let mut prev_sorted_by_tid = true; // SALES arrives (tid, item)-sorted.
    let mut k = 1usize;
    if max_len > 1 && n_txns > 0 {
        loop {
            k += 1;
            let resort = !prev_sorted_by_tid;

            // Phase 1 (parallel): join + sort + local count per shard.
            run_on_shards(&mut shards, |sh| sh.extend_and_count(k, resort, sort_opts))?;

            // Global C_k: k-way merge of the sorted local counts.
            let locals = take_local_counts(&mut shards);
            let c_k = CountRelation::merge_sum_filter(&locals, min_count);
            let r_prime_tuples: u64 = shards.iter().map(|sh| sh.r_prime_tuples).sum();

            // Phase 2 (parallel): filter each shard's R'_k against C_k.
            let c_ref = &c_k;
            run_on_shards(&mut shards, |sh| sh.filter(k, c_ref, sort_opts))?;
            let r_tuples: u64 = shards.iter().map(|sh| sh.r_prev.n_records()).sum();
            let r_kbytes =
                shards.iter().map(|sh| sh.r_prev.data_bytes()).sum::<u64>() as f64 / 1024.0;
            prev_sorted_by_tid = config.track_sort_order;

            let delta = sum_deltas(&mut shards);
            trace.push(IterationTrace {
                k,
                r_prime_tuples,
                r_tuples,
                r_kbytes,
                c_len: c_k.len() as u64,
                page_accesses: delta.accesses(),
                estimated_io_ms: delta.estimated_ms(&cost_model),
            });

            let done = r_tuples == 0 || k >= max_len;
            if !c_k.is_empty() {
                counts.push(c_k);
            }
            if done {
                for sh in &mut shards {
                    sh.free_prev()?;
                }
                break;
            }
        }
    }

    let total = shards
        .iter()
        .map(|sh| sh.pager.lock().stats())
        .fold(IoStats::default(), |acc, s| acc.plus(&s));
    Ok(EngineRun {
        result: SetmResult {
            counts,
            trace,
            n_transactions: n_txns,
            min_support_count: min_count,
        },
        total_page_accesses: total.accesses(),
        total_estimated_ms: total.estimated_ms(&cost_model),
        io: total,
    })
}

/// Run `f` on every shard, one scoped worker thread per shard, and
/// propagate the first error.
fn run_on_shards<F>(shards: &mut [EngineShard], f: F) -> Result<()>
where
    F: Fn(&mut EngineShard) -> Result<()> + Sync,
{
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = shards.iter_mut().map(|sh| s.spawn(move || f(sh))).collect();
        for h in handles {
            h.join().expect("engine shard worker panicked")?;
        }
        Ok(())
    })
}

fn take_local_counts(shards: &mut [EngineShard]) -> Vec<CountRelation> {
    shards
        .iter_mut()
        .map(|sh| std::mem::replace(&mut sh.local_counts, CountRelation::new(1)))
        .collect()
}

fn sum_deltas(shards: &mut [EngineShard]) -> IoStats {
    shards.iter_mut().map(|sh| sh.take_delta()).fold(IoStats::default(), |acc, d| acc.plus(&d))
}

fn free_unless_sales(file: &HeapFile, sales: &HeapFile) -> Result<()> {
    if file.file_id() != sales.file_id() {
        file.clone().free()?;
    }
    Ok(())
}

/// Retain the rows of an items-sorted pattern file whose pattern appears
/// in `c_k`. Both sides are pattern-sorted, so membership is one monotone
/// merge cursor — no binary search per row.
fn filter_by_counts(file: &HeapFile, c_k: &CountRelation) -> Result<HeapFile> {
    let mut b = HeapFileBuilder::new(file.pager().clone(), file.arity());
    let mut cursor = file.cursor();
    let mut ci = 0usize;
    while let Some(row) = cursor.next_row()? {
        let pattern = &row[1..];
        while ci < c_k.len() && c_k.pattern_at(ci) < pattern {
            ci += 1;
        }
        if ci < c_k.len() && c_k.pattern_at(ci) == pattern {
            b.push(row)?;
        }
    }
    b.finish()
}

/// Result of one counting pass over a group-sorted file.
struct GroupScan {
    /// The count relation over the group columns (threshold applied).
    counts: CountRelation,
    /// Rows of supported groups, when requested.
    filtered: Option<HeapFile>,
    /// Largest number of rows the group buffer ever held. Bounded by
    /// `min_count − 1`: once a group provably qualifies, its remaining
    /// rows stream straight to the output instead of accumulating.
    /// Asserted by the hot-group regression test.
    #[cfg_attr(not(test), allow(dead_code))]
    peak_group_buffer_rows: u64,
}

/// One pass over a group-sorted file: produce the count relation over the
/// `group_cols` and (when `build_filtered` and the file has a tid column)
/// the filtered `R_k` containing rows of supported groups.
///
/// Memory is bounded regardless of group size: rows buffer only until the
/// group's count reaches `min_count` — from then on they are streamed to
/// the output — so a single hot itemset cannot blow the memory budget.
fn count_sorted_groups(
    file: &HeapFile,
    group_cols: &[usize],
    min_count: u64,
    build_filtered: bool,
) -> Result<GroupScan> {
    let k = group_cols.len();
    let arity = file.arity();
    let mut c = CountRelation::new(k);
    let wants_filter = build_filtered && arity == k + 1;
    let mut filtered =
        if wants_filter { Some(HeapFileBuilder::new(file.pager().clone(), arity)) } else { None };

    let mut cursor = file.cursor();
    let mut current: Vec<u32> = Vec::with_capacity(k);
    let mut group_rows: Vec<u32> = Vec::new();
    let mut count: u64 = 0;
    let mut peak: u64 = 0;

    while let Some(row) = cursor.next_row()? {
        let same =
            count > 0 && group_cols.iter().enumerate().all(|(i, &col)| row[col] == current[i]);
        if !same {
            if count >= min_count {
                c.push(&current, count);
            }
            current.clear();
            current.extend(group_cols.iter().map(|&col| row[col]));
            count = 0;
            group_rows.clear();
        }
        count += 1;
        if let Some(b) = filtered.as_mut() {
            if count >= min_count {
                // The group qualifies: flush anything buffered, then
                // stream every further row directly.
                for r in group_rows.chunks_exact(arity) {
                    b.push(r)?;
                }
                group_rows.clear();
                b.push(row)?;
            } else {
                group_rows.extend_from_slice(row);
                peak = peak.max((group_rows.len() / arity) as u64);
            }
        }
    }
    if count >= min_count {
        c.push(&current, count);
    }
    let filtered = match filtered {
        Some(b) => Some(b.finish()?),
        None => None,
    };
    Ok(GroupScan { counts: c, filtered, peak_group_buffer_rows: peak })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, MinSupport, MiningParams};
    use crate::example;
    use crate::setm::memory;

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    #[test]
    fn engine_matches_memory_on_worked_example() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let mem = memory::mine(&d, &params);
        let eng = mine_with(&d, &params, cfg(), 0).unwrap();
        assert_eq!(eng.result.frequent_itemsets(), mem.frequent_itemsets());
        assert_eq!(eng.result.max_pattern_len(), 3);
        // Tuple counts per iteration agree too.
        for (a, b) in mem.trace.iter().zip(eng.result.trace.iter()) {
            assert_eq!(a.k, b.k);
            assert_eq!(a.r_prime_tuples, b.r_prime_tuples);
            assert_eq!(a.r_tuples, b.r_tuples);
            assert_eq!(a.c_len, b.c_len);
        }
    }

    #[test]
    fn engine_charges_io() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let eng = mine_with(&d, &params, cfg(), 0).unwrap();
        assert!(eng.total_page_accesses > 0);
        assert!(eng.total_estimated_ms > 0.0);
        // Each iteration carries its own accesses; they sum to the total.
        let sum: u64 = eng.result.trace.iter().map(|t| t.page_accesses).sum();
        assert_eq!(sum, eng.total_page_accesses);
    }

    #[test]
    fn parallel_engine_charges_io_consistently() {
        let txns: Vec<(u32, Vec<u32>)> =
            (0..300).map(|t| (t, vec![1, 2, 3, 4 + (t % 4)])).collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let run = mine_with(&d, &params, cfg(), 3).unwrap();
        assert!(run.total_page_accesses > 0);
        let sum: u64 = run.result.trace.iter().map(|t| t.page_accesses).sum();
        assert_eq!(sum, run.total_page_accesses);
    }

    /// Sequential and sharded engine runs agree — itemsets, counts, and
    /// the tuple-count trace series — for every shard count.
    #[test]
    fn sharded_engine_matches_sequential_exactly() {
        let txns: Vec<(u32, Vec<u32>)> = (0..80u32)
            .map(|t| {
                let mut items = vec![1, 2, 3];
                if t % 3 == 0 {
                    items.extend([10, 11]);
                }
                (t + 1, items)
            })
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let seq = mine_with(&d, &params, cfg(), 1).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let par = mine_with(&d, &params, cfg(), threads).unwrap();
            assert_eq!(
                par.result.frequent_itemsets(),
                seq.result.frequent_itemsets(),
                "threads={threads}"
            );
            assert_eq!(par.result.trace.len(), seq.result.trace.len());
            for (a, b) in seq.result.trace.iter().zip(par.result.trace.iter()) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.r_prime_tuples, b.r_prime_tuples, "threads={threads} k={}", a.k);
                assert_eq!(a.r_tuples, b.r_tuples, "threads={threads} k={}", a.k);
                assert_eq!(a.c_len, b.c_len, "threads={threads} k={}", a.k);
            }
        }
    }

    #[test]
    fn sort_tracking_saves_sort_passes() {
        // A dataset big enough that R_2 spans multiple pages.
        let txns: Vec<(u32, Vec<u32>)> = (0..400)
            .map(|t| (t, vec![1, 2, 3, 4 + (t % 3)]))
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let tracked =
            mine_with(&d, &params, EngineConfig { track_sort_order: true, ..cfg() }, 1).unwrap();
        let naive =
            mine_with(&d, &params, EngineConfig { track_sort_order: false, ..cfg() }, 1).unwrap();
        assert_eq!(
            tracked.result.frequent_itemsets(),
            naive.result.frequent_itemsets(),
            "the optimization must not change results"
        );
        assert!(
            tracked.total_page_accesses < naive.total_page_accesses,
            "tracking sort order must save I/O: tracked={} naive={}",
            tracked.total_page_accesses,
            naive.total_page_accesses
        );
    }

    #[test]
    fn sort_tracking_saves_io_in_parallel_mode_too() {
        let txns: Vec<(u32, Vec<u32>)> = (0..400)
            .map(|t| (t, vec![1, 2, 3, 4 + (t % 3)]))
            .collect();
        let d = Dataset::from_transactions(txns.iter().map(|(t, i)| (*t, i.as_slice())));
        let params = MiningParams::new(MinSupport::Fraction(0.2), 0.5);
        let tracked =
            mine_with(&d, &params, EngineConfig { track_sort_order: true, ..cfg() }, 4).unwrap();
        let naive =
            mine_with(&d, &params, EngineConfig { track_sort_order: false, ..cfg() }, 4).unwrap();
        assert_eq!(tracked.result.frequent_itemsets(), naive.result.frequent_itemsets());
        assert!(tracked.total_page_accesses < naive.total_page_accesses);
    }

    #[test]
    fn buffer_cache_reduces_charged_io() {
        let d = example::paper_example_dataset();
        let params = example::paper_example_params();
        let cold =
            mine_with(&d, &params, EngineConfig { cache_frames: 0, ..cfg() }, 1).unwrap();
        let warm =
            mine_with(&d, &params, EngineConfig { cache_frames: 1024, ..cfg() }, 1).unwrap();
        assert_eq!(cold.result.frequent_itemsets(), warm.result.frequent_itemsets());
        assert!(warm.total_page_accesses <= cold.total_page_accesses);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_pairs(std::iter::empty());
        let params = MiningParams::new(MinSupport::Count(1), 0.5);
        let run = mine_with(&d, &params, cfg(), 0).unwrap();
        assert_eq!(run.result.max_pattern_len(), 0);
    }

    /// Satellite regression: a single hot itemset must not accumulate its
    /// whole group in memory — the buffer is capped below `min_count`
    /// rows, after which rows stream straight to the filtered output.
    #[test]
    fn hot_group_buffer_is_capped_at_min_count() {
        let pager = Pager::shared();
        // One pattern {1,2} supported by 5,000 transactions (rows sorted
        // by items, then a small cold group behind it).
        let mut rows: Vec<[u32; 3]> = (0..5_000u32).map(|t| [t, 1, 2]).collect();
        rows.push([7, 1, 3]);
        let file = HeapFile::from_rows(pager, 3, rows.iter().map(|r| r.as_slice())).unwrap();
        let scan = count_sorted_groups(&file, &[1, 2], 5, true).unwrap();
        assert_eq!(scan.counts.get(&[1, 2]), Some(5_000));
        assert_eq!(scan.counts.get(&[1, 3]), None);
        let filtered = scan.filtered.unwrap();
        assert_eq!(filtered.n_records(), 5_000, "all hot-group rows kept");
        assert!(
            scan.peak_group_buffer_rows < 5,
            "group buffer must stay under min_count, held {} rows",
            scan.peak_group_buffer_rows
        );
    }

    #[test]
    fn capped_counting_matches_unfiltered_relation() {
        // The streamed filter output is identical to the old
        // buffer-everything behaviour: same rows, same order.
        let pager = Pager::shared();
        let rows: Vec<[u32; 3]> = vec![
            [1, 1, 2],
            [2, 1, 2],
            [3, 1, 2],
            [1, 1, 3], // count 1 < 2: dropped
            [1, 2, 3],
            [2, 2, 3],
        ];
        let file = HeapFile::from_rows(pager, 3, rows.iter().map(|r| r.as_slice())).unwrap();
        let scan = count_sorted_groups(&file, &[1, 2], 2, true).unwrap();
        assert_eq!(
            scan.filtered.unwrap().rows().unwrap(),
            vec![vec![1, 1, 2], vec![2, 1, 2], vec![3, 1, 2], vec![1, 2, 3], vec![2, 2, 3]],
        );
        assert_eq!(scan.counts.len(), 2);
    }
}
