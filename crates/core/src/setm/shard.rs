//! `trans_id`-range sharding for the parallel SETM executions.
//!
//! Every operator in Figure 4 groups by transaction or by itemset, never
//! across arbitrary rows, so the merge-scan passes partition cleanly by
//! `trans_id` range: each shard joins and locally counts its own
//! transactions, and only the per-shard `C_k` counts need a global k-way
//! merge (a pattern's supporting transactions are spread across shards).
//!
//! Shards are **contiguous** transaction ranges balanced by row count, so
//! a transaction's `R_k` tuples stay on one shard for the whole run and
//! each worker sees a similar amount of merge-scan work.

use std::ops::Range;

/// Resolve a `threads` knob: `0` means the machine's available
/// parallelism, anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Partition `weights.len()` transactions into at most `parts` contiguous
/// ranges whose weight (row count) is as even as a greedy contiguous split
/// allows. Always returns at least one range; ranges are non-overlapping,
/// in order, and cover `0..weights.len()` exactly.
pub fn partition_by_weight(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    let total: usize = weights.iter().sum();
    if weights.is_empty() || parts <= 1 || total == 0 {
        // One shard covering everything.
        return std::iter::once(0..weights.len()).collect();
    }
    let parts = parts.min(weights.len());
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut cum = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        cum += w;
        // Cut after transaction i once the cumulative weight crosses the
        // next ideal boundary (part_no · total / parts, compared without
        // division to avoid rounding drift).
        let part_no = ranges.len() + 1;
        if ranges.len() < parts - 1 && cum * parts >= part_no * total {
            ranges.push(start..i + 1);
            start = i + 1;
        }
    }
    ranges.push(start..weights.len());
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_covers(ranges: &[Range<usize>], n: usize) {
        assert!(!ranges.is_empty());
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
    }

    #[test]
    fn equal_weights_split_evenly() {
        let w = vec![1usize; 8];
        let r = partition_by_weight(&w, 4);
        assert_eq!(r, vec![0..2, 2..4, 4..6, 6..8]);
        check_covers(&r, 8);
    }

    #[test]
    fn skewed_weights_balance_by_rows_not_transactions() {
        // One heavy transaction up front: it gets its own shard.
        let w = vec![100usize, 1, 1, 1, 1, 1];
        let r = partition_by_weight(&w, 2);
        check_covers(&r, 6);
        assert_eq!(r[0], 0..1, "the heavy transaction fills the first shard");
    }

    #[test]
    fn more_parts_than_transactions_caps_at_transactions() {
        let w = vec![3usize, 3];
        let r = partition_by_weight(&w, 8);
        check_covers(&r, 2);
        assert!(r.len() <= 2);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(partition_by_weight(&[], 4), vec![0..0]);
        assert_eq!(partition_by_weight(&[5, 5], 1), vec![0..2]);
        // All-zero weights: a single covering shard.
        assert_eq!(partition_by_weight(&[0, 0, 0], 3), vec![0..3]);
    }

    #[test]
    fn every_part_count_covers_for_random_weights() {
        // Deterministic pseudo-random weights.
        let w: Vec<usize> = (0..37u64).map(|i| ((i * 2654435761) % 7) as usize).collect();
        for parts in 1..=10 {
            let r = partition_by_weight(&w, parts);
            check_covers(&r, w.len());
            assert!(r.len() <= parts.max(1));
        }
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
