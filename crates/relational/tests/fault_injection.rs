//! Failure-injection tests: a simulated media error at an arbitrary
//! point in a pipeline must surface as an `Err`, never a panic, a hang,
//! or silently wrong output.

use setm_relational::agg::grouped_count;
use setm_relational::join::merge_scan_join;
use setm_relational::sort::{external_sort, SortOptions};
use setm_relational::{Error, HeapFile, Pager};

fn sample_rows(n: u32) -> Vec<Vec<u32>> {
    (0..n).map(|i| vec![i % 97, i]).collect()
}

#[test]
fn fault_in_scan_propagates() {
    let pager = Pager::shared();
    let rows = sample_rows(2000);
    let f = HeapFile::from_rows(pager.clone(), 2, rows.iter().map(|r| r.as_slice())).unwrap();
    pager.lock().fail_after(Some(2));
    let err = f.rows().unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    // The fault is one-shot: the next scan succeeds.
    assert_eq!(f.rows().unwrap().len(), 2000);
}

#[test]
fn fault_during_sort_propagates_at_every_phase() {
    let rows = sample_rows(4000); // multiple runs with a tiny buffer
    // Probe fault points across the whole sort (run generation, merging,
    // final writes): every one must yield an error, none may panic.
    for fail_at in [1u64, 5, 10, 20, 30] {
        let pager = Pager::shared();
        let f =
            HeapFile::from_rows(pager.clone(), 2, rows.iter().map(|r| r.as_slice())).unwrap();
        pager.lock().fail_after(Some(fail_at));
        let result = external_sort(&f, &[0], SortOptions { buffer_pages: 3 });
        assert!(result.is_err(), "fault at access {fail_at} must surface");
    }
    // Control: without a fault the same sort succeeds.
    let pager = Pager::shared();
    let f = HeapFile::from_rows(pager.clone(), 2, rows.iter().map(|r| r.as_slice())).unwrap();
    let sorted = external_sort(&f, &[0], SortOptions { buffer_pages: 3 }).unwrap();
    assert_eq!(sorted.n_records(), 4000);
}

#[test]
fn fault_during_join_propagates() {
    let pager = Pager::shared();
    let rows = sample_rows(3000);
    let mut sorted = rows.clone();
    sorted.sort();
    let l = HeapFile::from_rows(pager.clone(), 2, sorted.iter().map(|r| r.as_slice())).unwrap();
    let r = HeapFile::from_rows(pager.clone(), 2, sorted.iter().map(|r| r.as_slice())).unwrap();
    pager.lock().fail_after(Some(4));
    let result = merge_scan_join(&l, &r, &[0], &[0], 3, |_, _| true, |a, b, out| {
        out.extend_from_slice(&[a[0], a[1], b[1]]);
    });
    assert!(result.is_err());
}

#[test]
fn fault_during_aggregation_propagates() {
    let pager = Pager::shared();
    let mut rows = sample_rows(3000);
    rows.sort();
    let f = HeapFile::from_rows(pager.clone(), 2, rows.iter().map(|r| r.as_slice())).unwrap();
    pager.lock().fail_after(Some(3));
    assert!(grouped_count(&f, &[0], 1).is_err());
}
