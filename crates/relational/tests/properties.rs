//! Property-based tests of the storage-engine primitives against
//! reference implementations.

use proptest::prelude::*;
use setm_relational::agg::grouped_count;
use setm_relational::btree::BulkLoader;
use setm_relational::join::{index_nested_loop_join, merge_scan_join};
use setm_relational::sort::{external_sort, SortOptions};
use setm_relational::{HeapFile, Pager, SharedPager};
use std::collections::HashMap;

fn build(pager: &SharedPager, rows: &[Vec<u32>], arity: usize) -> HeapFile {
    HeapFile::from_rows(pager.clone(), arity, rows.iter().map(|r| r.as_slice())).unwrap()
}

fn rows_strategy(arity: usize, max_rows: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..50, arity..=arity), 0..=max_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// External sort returns a permutation of its input, ordered on the
    /// key, regardless of buffer size (single-run and multi-run paths).
    #[test]
    fn external_sort_is_sorted_permutation(
        rows in rows_strategy(2, 300),
        buffer_pages in 3usize..6,
        key_col in 0usize..2,
    ) {
        let pager = Pager::shared();
        let f = build(&pager, &rows, 2);
        let sorted = external_sort(&f, &[key_col], SortOptions { buffer_pages }).unwrap();
        let got = sorted.rows().unwrap();
        prop_assert_eq!(got.len(), rows.len());
        // Ordered on the key.
        for w in got.windows(2) {
            prop_assert!(w[0][key_col] <= w[1][key_col]);
        }
        // Permutation: equal multisets.
        let mut a = rows.clone();
        let mut b = got;
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Merge-scan join equals a brute-force nested-loop reference.
    #[test]
    fn merge_join_matches_reference(
        left in rows_strategy(2, 120),
        right in rows_strategy(2, 120),
    ) {
        let pager = Pager::shared();
        let mut ls = left.clone();
        let mut rs = right.clone();
        ls.sort();
        rs.sort();
        let lf = build(&pager, &ls, 2);
        let rf = build(&pager, &rs, 2);
        let joined = merge_scan_join(&lf, &rf, &[0], &[0], 3, |l, r| r[1] > l[1], |l, r, out| {
            out.extend_from_slice(&[l[0], l[1], r[1]]);
        })
        .unwrap();
        let mut got = joined.rows().unwrap();
        let mut expect: Vec<Vec<u32>> = Vec::new();
        for l in &ls {
            for r in &rs {
                if l[0] == r[0] && r[1] > l[1] {
                    expect.push(vec![l[0], l[1], r[1]]);
                }
            }
        }
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// An index nested-loop join over a covering B+-tree equals the
    /// merge join on the same inputs.
    #[test]
    fn index_join_matches_merge_join(
        left in rows_strategy(2, 80),
        right in rows_strategy(2, 80),
    ) {
        let pager = Pager::shared();
        let mut ls = left;
        let mut rs = right;
        ls.sort();
        rs.sort();
        rs.dedup(); // B+-tree stores a key set per bulk load order
        let lf = build(&pager, &ls, 2);
        let rf = build(&pager, &rs, 2);
        let merged = merge_scan_join(&lf, &rf, &[0], &[0], 3, |_, _| true, |l, r, out| {
            out.extend_from_slice(&[l[0], l[1], r[1]]);
        })
        .unwrap();

        let mut loader = BulkLoader::new(pager.clone(), 2);
        for r in &rs {
            loader.push(r).unwrap();
        }
        let tree = loader.finish().unwrap();
        let indexed =
            index_nested_loop_join(&lf, &tree, &[0], 3, |_, _| true, |l, k, out| {
                out.extend_from_slice(&[l[0], l[1], k[1]]);
            })
            .unwrap();

        let mut a = merged.rows().unwrap();
        let mut b = indexed.rows().unwrap();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// B+-tree prefix counting equals filtering the key list.
    #[test]
    fn btree_prefix_scan_matches_filter(
        mut keys in rows_strategy(2, 400),
        probe in 0u32..50,
    ) {
        keys.sort();
        keys.dedup();
        let pager = Pager::shared();
        let mut loader = BulkLoader::new(pager, 2);
        for k in &keys {
            loader.push(k).unwrap();
        }
        let tree = loader.finish().unwrap();
        let expect = keys.iter().filter(|k| k[0] == probe).count() as u64;
        prop_assert_eq!(tree.count_prefix(&[probe]).unwrap(), expect);
        // Exact-key containment agrees too.
        for k in keys.iter().take(10) {
            prop_assert!(tree.contains(k).unwrap());
        }
    }

    /// Sort-based grouped counting equals a hash-map reference.
    #[test]
    fn grouped_count_matches_hashmap(
        rows in rows_strategy(2, 300),
        min_count in 1u64..4,
    ) {
        let pager = Pager::shared();
        let mut sorted_rows = rows.clone();
        sorted_rows.sort();
        let f = build(&pager, &sorted_rows, 2);
        let counted = grouped_count(&f, &[0], min_count).unwrap();
        let mut reference: HashMap<u32, u64> = HashMap::new();
        for r in &rows {
            *reference.entry(r[0]).or_insert(0) += 1;
        }
        let mut expect: Vec<Vec<u32>> = reference
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .map(|(g, c)| vec![g, c as u32])
            .collect();
        expect.sort();
        prop_assert_eq!(counted.rows().unwrap(), expect);
    }

    /// Heap files round-trip arbitrary row sets in order, across page
    /// boundaries.
    #[test]
    fn heapfile_round_trip(rows in rows_strategy(3, 1500)) {
        let pager = Pager::shared();
        let f = build(&pager, &rows, 3);
        prop_assert_eq!(f.n_records(), rows.len() as u64);
        prop_assert_eq!(f.rows().unwrap(), rows);
    }

    /// I/O accounting: scanning an n-page file costs exactly n reads and
    /// the sequential/random split never loses accesses.
    #[test]
    fn scan_io_accounting_is_exact(rows in rows_strategy(2, 2000)) {
        let pager = Pager::shared();
        let f = build(&pager, &rows, 2);
        pager.lock().reset_stats();
        f.for_each_row(|_| {}).unwrap();
        let s = pager.lock().stats();
        prop_assert_eq!(s.reads(), f.n_pages() as u64);
        prop_assert_eq!(s.seq_reads + s.rand_reads, s.reads());
        prop_assert_eq!(s.writes(), 0);
    }
}
