//! Fixed-size pages with a slotted fixed-length-record layout.
//!
//! The paper's analysis (Section 3.2) assumes 4 KiB pages holding
//! fixed-length records of 4-byte integer columns with "little overhead".
//! We use a 4-byte header (record count) and pack records densely after it,
//! so an 8-byte `SALES` tuple page holds 511 records (the paper rounds this
//! to 500 for its arithmetic; the analytical cost model in `setm-costmodel`
//! uses the paper's rounded figures, while the engine uses the exact ones).

use crate::errors::{Error, Result};
use crate::schema::VALUE_BYTES;

/// Size of a page in bytes, per the paper.
pub const PAGE_SIZE: usize = 4096;

/// Bytes reserved at the start of each page for the record count.
pub const PAGE_HEADER_BYTES: usize = 4;

/// A 4 KiB page. Heap-allocated so `Vec<Page>` growth stays cheap.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page { data: Box::new([0u8; PAGE_SIZE]) }
    }
}

impl Page {
    /// A zeroed page (zero records).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of fixed-length records a page can hold for the given arity.
    pub fn capacity(arity: usize) -> usize {
        (PAGE_SIZE - PAGE_HEADER_BYTES) / (arity * VALUE_BYTES)
    }

    /// Number of records currently stored.
    pub fn record_count(&self) -> usize {
        u32::from_le_bytes([self.data[0], self.data[1], self.data[2], self.data[3]]) as usize
    }

    fn set_record_count(&mut self, n: usize) {
        self.data[0..4].copy_from_slice(&(n as u32).to_le_bytes());
    }

    /// Append a record; returns `true` if it fit, `false` if the page is full.
    pub fn push_record(&mut self, row: &[u32]) -> Result<bool> {
        let arity = row.len();
        let rec_bytes = arity * VALUE_BYTES;
        if rec_bytes > PAGE_SIZE - PAGE_HEADER_BYTES {
            return Err(Error::RecordTooLarge { record_bytes: rec_bytes, page_bytes: PAGE_SIZE });
        }
        let n = self.record_count();
        if n >= Self::capacity(arity) {
            return Ok(false);
        }
        let off = PAGE_HEADER_BYTES + n * rec_bytes;
        for (i, v) in row.iter().enumerate() {
            self.data[off + i * VALUE_BYTES..off + (i + 1) * VALUE_BYTES]
                .copy_from_slice(&v.to_le_bytes());
        }
        self.set_record_count(n + 1);
        Ok(true)
    }

    /// Read record `idx` (arity values) into `out`.
    pub fn read_record(&self, idx: usize, arity: usize, out: &mut [u32]) {
        debug_assert!(idx < self.record_count());
        debug_assert_eq!(out.len(), arity);
        let rec_bytes = arity * VALUE_BYTES;
        let off = PAGE_HEADER_BYTES + idx * rec_bytes;
        for (i, o) in out.iter_mut().enumerate() {
            let b = &self.data[off + i * VALUE_BYTES..off + (i + 1) * VALUE_BYTES];
            *o = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
    }

    /// Append all records of arity `arity` in this page to `out` as flat values.
    pub fn read_all(&self, arity: usize, out: &mut Vec<u32>) {
        let n = self.record_count();
        let rec_bytes = arity * VALUE_BYTES;
        out.reserve(n * arity);
        for idx in 0..n {
            let off = PAGE_HEADER_BYTES + idx * rec_bytes;
            for i in 0..arity {
                let b = &self.data[off + i * VALUE_BYTES..off + (i + 1) * VALUE_BYTES];
                out.push(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            }
        }
    }

    /// Raw byte access (used by the B+-tree, which defines its own layout).
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable raw byte access.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} records)", self.record_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_paper_arithmetic() {
        // 8-byte SALES tuples: paper says "upto 500 entries"; exact is 511.
        assert_eq!(Page::capacity(2), 511);
        // R_2 tuples are 12 bytes.
        assert_eq!(Page::capacity(3), 341);
    }

    #[test]
    fn push_and_read_round_trip() {
        let mut p = Page::new();
        assert_eq!(p.record_count(), 0);
        assert!(p.push_record(&[7, 42]).unwrap());
        assert!(p.push_record(&[8, 43]).unwrap());
        let mut buf = [0u32; 2];
        p.read_record(0, 2, &mut buf);
        assert_eq!(buf, [7, 42]);
        p.read_record(1, 2, &mut buf);
        assert_eq!(buf, [8, 43]);
    }

    #[test]
    fn page_fills_to_exact_capacity() {
        let mut p = Page::new();
        let cap = Page::capacity(2);
        for i in 0..cap {
            assert!(p.push_record(&[i as u32, 0]).unwrap(), "record {i} should fit");
        }
        assert!(!p.push_record(&[0, 0]).unwrap(), "page must reject overflow");
        assert_eq!(p.record_count(), cap);
    }

    #[test]
    fn read_all_returns_flat_values_in_order() {
        let mut p = Page::new();
        p.push_record(&[1, 2, 3]).unwrap();
        p.push_record(&[4, 5, 6]).unwrap();
        let mut out = vec![];
        p.read_all(3, &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let mut p = Page::new();
        let big = vec![0u32; (PAGE_SIZE / VALUE_BYTES) + 1];
        assert!(matches!(p.push_record(&big), Err(Error::RecordTooLarge { .. })));
    }
}
