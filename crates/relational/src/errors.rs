//! Error type shared by all engine components.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A page number was out of bounds for the file.
    PageOutOfBounds { file: u32, page: u32, len: u32 },
    /// A file id did not name an existing file.
    NoSuchFile(u32),
    /// A table name was not found in the catalog.
    NoSuchTable(String),
    /// An index name was not found in the catalog.
    NoSuchIndex(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A row's arity did not match the table schema.
    ArityMismatch { expected: usize, got: usize },
    /// A column name was not found in a schema.
    NoSuchColumn(String),
    /// A record was too large to fit in a single page.
    RecordTooLarge { record_bytes: usize, page_bytes: usize },
    /// The operation required sorted input but the input was not sorted.
    NotSorted,
    /// An aggregate's value exceeded what a u32 cell can hold.
    AggregateOverflow { value: u64 },
    /// Generic invariant violation with a message.
    Corrupt(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::PageOutOfBounds { file, page, len } => {
                write!(f, "page {page} out of bounds for file {file} (len {len})")
            }
            Error::NoSuchFile(id) => write!(f, "no such file: {id}"),
            Error::NoSuchTable(name) => write!(f, "no such table: {name}"),
            Error::NoSuchIndex(name) => write!(f, "no such index: {name}"),
            Error::TableExists(name) => write!(f, "table already exists: {name}"),
            Error::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} columns, got {got}")
            }
            Error::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            Error::RecordTooLarge { record_bytes, page_bytes } => {
                write!(f, "record of {record_bytes} bytes too large for {page_bytes}-byte page")
            }
            Error::NotSorted => write!(f, "input relation is not sorted as required"),
            Error::AggregateOverflow { value } => {
                write!(f, "aggregate value {value} exceeds the u32 column range")
            }
            Error::Corrupt(msg) => write!(f, "corrupt state: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::PageOutOfBounds { file: 1, page: 9, len: 3 };
        assert!(e.to_string().contains("page 9"));
        assert!(e.to_string().contains("file 1"));
        let e = Error::ArityMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains("expected 3"));
        let e = Error::NoSuchTable("SALES".into());
        assert!(e.to_string().contains("SALES"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::NoSuchFile(7), Error::NoSuchFile(7));
        assert_ne!(Error::NoSuchFile(7), Error::NoSuchFile(8));
    }
}
