//! Sort-based grouped counting.
//!
//! Implements the paper's
//! `SELECT item_1, .., item_k, COUNT(*) … GROUP BY … HAVING COUNT(*) >= :minsupport`
//! step: "Generating the counts involves a simple sequential scan over
//! R'_k" (Section 4.4). The input must already be sorted on the group
//! columns (SETM sorts `R'_k` on its item columns immediately before).

use crate::errors::Result;
use crate::heap::{HeapFile, HeapFileBuilder};

/// Count consecutive groups of `input` (sorted on `group_cols`), keeping
/// groups with count `>= min_count`. Output rows are the group columns
/// followed by the count.
pub fn grouped_count(
    input: &HeapFile,
    group_cols: &[usize],
    min_count: u64,
) -> Result<HeapFile> {
    let pager = input.pager().clone();
    let out_arity = group_cols.len() + 1;
    let mut out = HeapFileBuilder::new(pager, out_arity);
    let mut cursor = input.cursor();

    let mut current: Vec<u32> = Vec::with_capacity(group_cols.len());
    let mut count: u64 = 0;
    let mut row_buf: Vec<u32> = Vec::with_capacity(out_arity);

    let mut flush = |key: &[u32], count: u64, out: &mut HeapFileBuilder| -> Result<()> {
        if count >= min_count {
            row_buf.clear();
            row_buf.extend_from_slice(key);
            row_buf.push(u32::try_from(count).unwrap_or(u32::MAX));
            out.push(&row_buf)?;
        }
        Ok(())
    };

    while let Some(row) = cursor.next_row()? {
        let same =
            count > 0 && group_cols.iter().enumerate().all(|(i, &c)| row[c] == current[i]);
        if same {
            count += 1;
        } else {
            if count > 0 {
                flush(&current, count, &mut out)?;
            }
            current.clear();
            current.extend(group_cols.iter().map(|&c| row[c]));
            count = 1;
        }
    }
    if count > 0 {
        flush(&current, count, &mut out)?;
    }
    out.finish()
}

/// Sum `sum_col` over consecutive groups of `input` (sorted on
/// `group_cols`), keeping groups whose sum is `>= min_sum`. Output rows
/// are the group columns followed by the sum.
///
/// This is the merge half of a partitioned `GROUP BY`: shard-local
/// `COUNT(*)` relations are unioned and re-aggregated here with
/// `SUM(cnt)`, which is exactly how the parallel SQL execution applies
/// the global `HAVING SUM(cnt) >= :minsupport` threshold.
pub fn grouped_sum(
    input: &HeapFile,
    group_cols: &[usize],
    sum_col: usize,
    min_sum: u64,
) -> Result<HeapFile> {
    let pager = input.pager().clone();
    let out_arity = group_cols.len() + 1;
    let mut out = HeapFileBuilder::new(pager, out_arity);
    let mut cursor = input.cursor();

    let mut current: Vec<u32> = Vec::with_capacity(group_cols.len());
    let mut sum: u64 = 0;
    let mut started = false;
    let mut row_buf: Vec<u32> = Vec::with_capacity(out_arity);

    let mut flush = |key: &[u32], sum: u64, out: &mut HeapFileBuilder| -> Result<()> {
        if sum >= min_sum {
            row_buf.clear();
            row_buf.extend_from_slice(key);
            // A sum overflowing the u32 cell is a typed error, not a
            // silent clamp — two 4-billion values already exceed it, and
            // a clamped value would make equivalent HAVING predicates
            // disagree (pushed-down >= sees the true u64, post-applied
            // = / < would see the clamp).
            row_buf.push(
                u32::try_from(sum).map_err(|_| crate::errors::Error::AggregateOverflow {
                    value: sum,
                })?,
            );
            out.push(&row_buf)?;
        }
        Ok(())
    };

    while let Some(row) = cursor.next_row()? {
        let same =
            started && group_cols.iter().enumerate().all(|(i, &c)| row[c] == current[i]);
        if same {
            sum += row[sum_col] as u64;
        } else {
            if started {
                flush(&current, sum, &mut out)?;
            }
            current.clear();
            current.extend(group_cols.iter().map(|&c| row[c]));
            sum = row[sum_col] as u64;
            started = true;
        }
    }
    if started {
        flush(&current, sum, &mut out)?;
    }
    out.finish()
}

/// Scan `input`, keep rows passing `pred`, and project `cols` into the
/// output (a generic filter+project used by the SQL executor).
pub fn filter_project<F: FnMut(&[u32]) -> bool>(
    input: &HeapFile,
    cols: &[usize],
    mut pred: F,
) -> Result<HeapFile> {
    let pager = input.pager().clone();
    let mut out = HeapFileBuilder::new(pager, cols.len());
    let mut buf = Vec::with_capacity(cols.len());
    let mut cursor = input.cursor();
    let mut pending: Result<()> = Ok(());
    while let Some(row) = cursor.next_row()? {
        if pred(row) {
            buf.clear();
            buf.extend(cols.iter().map(|&c| row[c]));
            if let Err(e) = out.push(&buf) {
                pending = Err(e);
            }
        }
        pending.clone()?;
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn hf(pager: &crate::pager::SharedPager, rows: &[Vec<u32>], arity: usize) -> HeapFile {
        HeapFile::from_rows(pager.clone(), arity, rows.iter().map(|r| r.as_slice())).unwrap()
    }

    #[test]
    fn counts_consecutive_groups() {
        let pager = Pager::shared();
        let input = hf(
            &pager,
            &[vec![1, 0], vec![1, 1], vec![2, 0], vec![3, 0], vec![3, 1], vec![3, 2]],
            2,
        );
        let out = grouped_count(&input, &[0], 1).unwrap();
        assert_eq!(out.rows().unwrap(), vec![vec![1, 2], vec![2, 1], vec![3, 3]]);
    }

    #[test]
    fn having_filters_small_groups() {
        let pager = Pager::shared();
        let input = hf(&pager, &[vec![1], vec![1], vec![2], vec![3], vec![3], vec![3]], 1);
        let out = grouped_count(&input, &[0], 2).unwrap();
        assert_eq!(out.rows().unwrap(), vec![vec![1, 2], vec![3, 3]]);
    }

    #[test]
    fn multi_column_groups() {
        let pager = Pager::shared();
        // (tid, a, b) counting on (a, b).
        let input = hf(
            &pager,
            &[vec![9, 1, 2], vec![8, 1, 2], vec![7, 1, 3], vec![6, 2, 2]],
            3,
        );
        let out = grouped_count(&input, &[1, 2], 1).unwrap();
        assert_eq!(
            out.rows().unwrap(),
            vec![vec![1, 2, 2], vec![1, 3, 1], vec![2, 2, 1]]
        );
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let pager = Pager::shared();
        let input = HeapFile::empty(pager, 2).unwrap();
        let out = grouped_count(&input, &[0], 1).unwrap();
        assert_eq!(out.n_records(), 0);
    }

    #[test]
    fn all_groups_below_min_gives_empty_output() {
        let pager = Pager::shared();
        let input = hf(&pager, &[vec![1], vec![2], vec![3]], 1);
        let out = grouped_count(&input, &[0], 2).unwrap();
        assert_eq!(out.n_records(), 0);
    }

    #[test]
    fn grouped_sum_merges_partial_counts() {
        let pager = Pager::shared();
        // Two shards' partial counts of the same patterns, unioned and
        // sorted: (item, cnt).
        let input = hf(
            &pager,
            &[vec![1, 2], vec![1, 3], vec![2, 1], vec![3, 1], vec![3, 1]],
            2,
        );
        let out = grouped_sum(&input, &[0], 1, 1).unwrap();
        assert_eq!(out.rows().unwrap(), vec![vec![1, 5], vec![2, 1], vec![3, 2]]);
        // The HAVING SUM(..) >= threshold pushdown.
        let filtered = grouped_sum(&input, &[0], 1, 2).unwrap();
        assert_eq!(filtered.rows().unwrap(), vec![vec![1, 5], vec![3, 2]]);
    }

    #[test]
    fn grouped_sum_overflow_is_a_typed_error_not_a_clamp() {
        let pager = Pager::shared();
        // Two rows whose sum exceeds u32::MAX: returning a clamped
        // 4294967295 would be silently wrong, so it must error.
        let input = hf(&pager, &[vec![1, 4_000_000_000], vec![1, 4_000_000_000]], 2);
        let err = grouped_sum(&input, &[0], 1, 1).unwrap_err();
        assert_eq!(
            err,
            crate::errors::Error::AggregateOverflow { value: 8_000_000_000 },
            "got {err:?}"
        );
        // The pushed-down HAVING threshold still works on the true u64
        // sum: a threshold above the sum filters the group before any
        // output cell is built, so no overflow occurs.
        let out = grouped_sum(&input, &[0], 1, 9_000_000_000).unwrap();
        assert_eq!(out.n_records(), 0);
    }

    #[test]
    fn grouped_sum_on_empty_input() {
        let pager = Pager::shared();
        let input = HeapFile::empty(pager, 2).unwrap();
        let out = grouped_sum(&input, &[0], 1, 1).unwrap();
        assert_eq!(out.n_records(), 0);
    }

    #[test]
    fn filter_project_selects_and_projects() {
        let pager = Pager::shared();
        let input = hf(&pager, &[vec![1, 10], vec![2, 20], vec![3, 30]], 2);
        let out = filter_project(&input, &[1], |r| r[0] >= 2).unwrap();
        assert_eq!(out.rows().unwrap(), vec![vec![20], vec![30]]);
    }
}
