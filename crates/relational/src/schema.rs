//! Relation schemas.
//!
//! Following the paper's data model (Section 3.2: "each item and transaction
//! id is represented using 4 bytes; item values are represented by
//! integers"), every column is an unsigned 32-bit integer. A schema is
//! therefore just an ordered list of column names; the arity determines the
//! fixed record length.

use crate::errors::{Error, Result};

/// Width of one column value in bytes.
pub const VALUE_BYTES: usize = 4;

/// An ordered list of named `u32` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Build a schema from column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        Schema { columns: names.into_iter().map(Into::into).collect() }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Record length in bytes for this schema.
    pub fn record_bytes(&self) -> usize {
        self.arity() * VALUE_BYTES
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| Error::NoSuchColumn(name.to_string()))
    }

    /// Whether a column with the given name exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c == name)
    }

    /// Schema of the paper's `SALES(trans_id, item)` relation.
    pub fn sales() -> Self {
        Schema::new(["trans_id", "item"])
    }

    /// Schema of the paper's `R_k(trans_id, item_1, .., item_k)` relation.
    pub fn r_k(k: usize) -> Self {
        let mut cols = vec!["trans_id".to_string()];
        cols.extend((1..=k).map(|i| format!("item_{i}")));
        Schema::new(cols)
    }

    /// Schema of the paper's `C_k(item_1, .., item_k, count)` relation.
    pub fn c_k(k: usize) -> Self {
        let mut cols: Vec<String> = (1..=k).map(|i| format!("item_{i}")).collect();
        cols.push("count".to_string());
        Schema::new(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sales_schema_matches_paper() {
        let s = Schema::sales();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.record_bytes(), 8); // the paper's 8-byte SALES tuple
        assert_eq!(s.column_index("trans_id").unwrap(), 0);
        assert_eq!(s.column_index("item").unwrap(), 1);
    }

    #[test]
    fn r_k_schema_has_tid_plus_k_items() {
        let s = Schema::r_k(3);
        assert_eq!(s.columns(), &["trans_id", "item_1", "item_2", "item_3"]);
        // Section 4.3: "The size of a tuple from R_i is (i + 1) x 4 bytes".
        assert_eq!(s.record_bytes(), (3 + 1) * 4);
    }

    #[test]
    fn c_k_schema_has_k_items_plus_count() {
        let s = Schema::c_k(2);
        assert_eq!(s.columns(), &["item_1", "item_2", "count"]);
    }

    #[test]
    fn missing_column_is_an_error() {
        let s = Schema::sales();
        assert_eq!(s.column_index("price"), Err(Error::NoSuchColumn("price".into())));
        assert!(!s.has_column("price"));
        assert!(s.has_column("item"));
    }
}
