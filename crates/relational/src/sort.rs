//! External merge sort — the first of the paper's two primitives.
//!
//! Algorithm SETM (Figure 4) performs two sorts per iteration: `R_{k-1}` on
//! `(trans_id, item_1, .., item_{k-1})` before the merge-scan join, and
//! `R'_k` on `(item_1, .., item_k)` before counting. The sorter is a
//! classic two-phase external sort: quicksorted initial runs of
//! `buffer_pages` pages each, then (multi-pass if necessary) k-way merge
//! with a fan-in of `buffer_pages - 1`.
//!
//! All I/O flows through the shared pager, so a sort's page-access count
//! can be compared with the `2·||R||` term of the paper's Section 4.3
//! formula ("the output is read again, sorted, and written out to disk").

use crate::errors::Result;
use crate::heap::{HeapFile, HeapFileBuilder};
use crate::page::Page;
use crate::tuple::{cmp_all, cmp_on};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tuning knobs for [`external_sort`].
#[derive(Debug, Clone, Copy)]
pub struct SortOptions {
    /// In-memory workspace, in pages. Runs are this long; merge fan-in is
    /// one less (one page per input run, one for output, in the classic
    /// accounting).
    pub buffer_pages: usize,
}

impl Default for SortOptions {
    fn default() -> Self {
        // 256 pages = 1 MiB of 4 KiB pages: small enough that the paper's
        // multi-megabyte relations genuinely spill, large enough for quick
        // tests to take the single-run fast path.
        SortOptions { buffer_pages: 256 }
    }
}

/// Total order used everywhere: key columns first, then the remaining
/// columns as a tiebreak, so equal rows are contiguous and output is
/// deterministic.
pub fn row_order(a: &[u32], b: &[u32], key: &[usize]) -> Ordering {
    cmp_on(a, b, key).then_with(|| cmp_all(a, b))
}

/// Sort a flat row-major buffer in memory; returns sorted flat rows.
pub fn sort_flat_rows(flat: &[u32], arity: usize, key: &[usize]) -> Vec<u32> {
    debug_assert_eq!(flat.len() % arity.max(1), 0);
    let n = flat.len().checked_div(arity).unwrap_or(0);
    let mut index: Vec<u32> = (0..n as u32).collect();
    index.sort_unstable_by(|&a, &b| {
        let ra = &flat[a as usize * arity..(a as usize + 1) * arity];
        let rb = &flat[b as usize * arity..(b as usize + 1) * arity];
        row_order(ra, rb, key)
    });
    let mut out = Vec::with_capacity(flat.len());
    for &i in &index {
        out.extend_from_slice(&flat[i as usize * arity..(i as usize + 1) * arity]);
    }
    out
}

struct MergeEntry {
    key: Vec<u32>,
    row: Vec<u32>,
    run: usize,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    // Reversed: BinaryHeap is a max-heap, we need the minimum row first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.row.cmp(&self.row))
            .then_with(|| other.run.cmp(&self.run))
    }
}

fn extract_key(row: &[u32], key: &[usize], out: &mut Vec<u32>) {
    out.clear();
    out.extend(key.iter().map(|&k| row[k]));
}

/// Externally sort `input` on the given key columns, producing a new heap
/// file on the same pager. The input file is left intact (the caller frees
/// it when the paper's loop discards the unsorted relation).
pub fn external_sort(input: &HeapFile, key: &[usize], opts: SortOptions) -> Result<HeapFile> {
    let arity = input.arity();
    let pager = input.pager().clone();
    let buffer_pages = opts.buffer_pages.max(3);
    let rows_per_run = buffer_pages * Page::capacity(arity);

    // Phase 1: run generation.
    let mut runs: Vec<HeapFile> = Vec::new();
    let mut chunk: Vec<u32> = Vec::with_capacity(rows_per_run.min(1 << 20) * arity);
    let mut cursor = input.cursor();
    loop {
        let row = cursor.next_row()?;
        match row {
            Some(r) => {
                chunk.extend_from_slice(r);
                if chunk.len() / arity >= rows_per_run {
                    runs.push(write_run(&pager, &chunk, arity, key)?);
                    chunk.clear();
                }
            }
            None => break,
        }
    }
    if !chunk.is_empty() || runs.is_empty() {
        runs.push(write_run(&pager, &chunk, arity, key)?);
    }

    // Phase 2: (possibly multi-pass) k-way merge.
    let fan_in = (buffer_pages - 1).max(2);
    while runs.len() > 1 {
        let mut next_level: Vec<HeapFile> = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            next_level.push(merge_runs(&pager, group, key)?);
        }
        for run in runs {
            run.free()?;
        }
        runs = next_level;
    }
    Ok(runs.pop().expect("at least one run exists"))
}

fn write_run(
    pager: &crate::pager::SharedPager,
    chunk: &[u32],
    arity: usize,
    key: &[usize],
) -> Result<HeapFile> {
    let sorted = sort_flat_rows(chunk, arity, key);
    let mut b = HeapFileBuilder::new(pager.clone(), arity);
    for row in sorted.chunks_exact(arity) {
        b.push(row)?;
    }
    b.finish()
}

fn merge_runs(
    pager: &crate::pager::SharedPager,
    runs: &[HeapFile],
    key: &[usize],
) -> Result<HeapFile> {
    let arity = runs[0].arity();
    let mut cursors: Vec<_> = runs.iter().map(|r| r.cursor()).collect();
    let mut heap: BinaryHeap<MergeEntry> = BinaryHeap::with_capacity(cursors.len());
    for (i, cur) in cursors.iter_mut().enumerate() {
        if let Some(row) = cur.next_row()? {
            let mut k = Vec::with_capacity(key.len());
            extract_key(row, key, &mut k);
            heap.push(MergeEntry { key: k, row: row.to_vec(), run: i });
        }
    }
    let mut out = HeapFileBuilder::new(pager.clone(), arity);
    while let Some(mut entry) = heap.pop() {
        out.push(&entry.row)?;
        if let Some(row) = cursors[entry.run].next_row()? {
            entry.row.clear();
            entry.row.extend_from_slice(row);
            extract_key(&entry.row, key, &mut entry.key);
            heap.push(entry);
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use crate::tuple::is_sorted_on;

    fn build(pager: &crate::pager::SharedPager, rows: &[Vec<u32>], arity: usize) -> HeapFile {
        HeapFile::from_rows(pager.clone(), arity, rows.iter().map(|r| r.as_slice())).unwrap()
    }

    #[test]
    fn sorts_single_page_input() {
        let pager = Pager::shared();
        let rows = vec![vec![3, 1], vec![1, 2], vec![2, 0], vec![1, 1]];
        let f = build(&pager, &rows, 2);
        let sorted = external_sort(&f, &[0, 1], SortOptions::default()).unwrap();
        assert_eq!(
            sorted.rows().unwrap(),
            vec![vec![1, 1], vec![1, 2], vec![2, 0], vec![3, 1]]
        );
    }

    #[test]
    fn sort_is_a_permutation_and_ordered_across_runs() {
        let pager = Pager::shared();
        // Force multiple runs: tiny buffer (3 pages) and > 3*511 rows.
        let n = 5000u32;
        let mut rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i.wrapping_mul(2654435761) % 997, i]).collect();
        let f = build(&pager, &rows, 2);
        let sorted = external_sort(&f, &[0], SortOptions { buffer_pages: 3 }).unwrap();
        let mut got = sorted.rows().unwrap();
        assert_eq!(got.len(), n as usize);
        assert!(is_sorted_on(got.iter().map(|r| r.as_slice()), &[0]));
        // Permutation check: same multiset.
        rows.sort();
        got.sort();
        assert_eq!(rows, got);
    }

    #[test]
    fn multi_pass_merge_handles_many_runs() {
        let pager = Pager::shared();
        // buffer_pages=3 -> fan_in=2; 8 runs need 3 merge passes.
        let n = 13000u32;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![n - i]).collect();
        let f = build(&pager, &rows, 1);
        let sorted = external_sort(&f, &[0], SortOptions { buffer_pages: 3 }).unwrap();
        let got = sorted.rows().unwrap();
        assert_eq!(got.len(), n as usize);
        assert!(is_sorted_on(got.iter().map(|r| r.as_slice()), &[0]));
        assert_eq!(got[0], vec![1]);
        assert_eq!(got[n as usize - 1], vec![n]);
    }

    #[test]
    fn key_sort_breaks_ties_on_full_row() {
        let pager = Pager::shared();
        let rows = vec![vec![1, 9], vec![1, 3], vec![1, 7]];
        let f = build(&pager, &rows, 2);
        let sorted = external_sort(&f, &[0], SortOptions::default()).unwrap();
        // Key column ties broken by the remaining columns -> deterministic.
        assert_eq!(sorted.rows().unwrap(), vec![vec![1, 3], vec![1, 7], vec![1, 9]]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let pager = Pager::shared();
        let f = HeapFile::empty(pager, 2).unwrap();
        let sorted = external_sort(&f, &[0], SortOptions::default()).unwrap();
        assert_eq!(sorted.n_records(), 0);
    }

    #[test]
    fn in_memory_fast_path_costs_one_read_and_write_pass() {
        let pager = Pager::shared();
        let rows: Vec<Vec<u32>> = (0..511).rev().map(|i| vec![i]).collect();
        let f = build(&pager, &rows, 1);
        pager.lock().reset_stats();
        let sorted = external_sort(&f, &[0], SortOptions::default()).unwrap();
        let s = pager.lock().stats();
        // One page in, one page out: the 2*||R|| accounting of Section 4.3.
        assert_eq!(s.reads(), 1);
        assert_eq!(s.writes(), 1);
        assert_eq!(sorted.n_records(), 511);
    }

    #[test]
    fn sort_flat_rows_matches_reference_sort() {
        let flat = vec![5, 1, 2, 9, 5, 0, 2, 2];
        let out = sort_flat_rows(&flat, 2, &[0]);
        assert_eq!(out, vec![2, 2, 2, 9, 5, 0, 5, 1]);
    }
}
