//! Bulk-loaded B+-tree indexes.
//!
//! Section 3.2 analyzes the nested-loop mining strategy under two B+-tree
//! indexes on `SALES`: one on `(item, trans_id)` and one on `(trans_id)`.
//! "Since all the data is contained in the index, we do not need a pointer
//! in the leaf page entries" — i.e. key-only leaves; the index *is* the
//! relation in the chosen ordering. We implement exactly that: fixed-arity
//! `u32` composite keys, dense bulk loading from sorted input, next-leaf
//! chaining for range scans, and optional pinning of internal pages in
//! memory (the paper assumes "the non-leaf pages ... reside in memory and
//! are not fetched from disk").
//!
//! Page layout (4 KiB):
//! `[kind: u8][pad: u8][n_entries: u16][extra: u32]` then packed entries.
//! Leaf entries are `key_arity` u32 values; `extra` is the next-leaf page
//! number (`u32::MAX` at the end of the chain). Internal entries are
//! `key_arity` u32 values plus a child page number; `extra` is the leftmost
//! child. An internal node with `m` children stores `m - 1` separator keys.

use crate::errors::{Error, Result};
use crate::heap::HeapFile;
use crate::page::{Page, PAGE_SIZE};
use crate::pager::{FileId, SharedPager};
use std::cmp::Ordering;
use std::collections::HashMap;

const HEADER: usize = 8;
const KIND_LEAF: u8 = 0;
const KIND_INTERNAL: u8 = 1;
const NO_NEXT: u32 = u32::MAX;

/// Entries per leaf page for a given key arity.
pub fn leaf_capacity(key_arity: usize) -> usize {
    (PAGE_SIZE - HEADER) / (key_arity * 4)
}

/// Entries (separator keys) per internal page for a given key arity.
pub fn internal_capacity(key_arity: usize) -> usize {
    (PAGE_SIZE - HEADER) / (key_arity * 4 + 4)
}

fn read_u16(p: &Page, off: usize) -> u16 {
    let b = p.bytes();
    u16::from_le_bytes([b[off], b[off + 1]])
}
fn read_u32(p: &Page, off: usize) -> u32 {
    let b = p.bytes();
    u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]])
}
fn write_u16(p: &mut Page, off: usize, v: u16) {
    p.bytes_mut()[off..off + 2].copy_from_slice(&v.to_le_bytes());
}
fn write_u32(p: &mut Page, off: usize, v: u32) {
    p.bytes_mut()[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn node_kind(p: &Page) -> u8 {
    p.bytes()[0]
}
fn n_entries(p: &Page) -> usize {
    read_u16(p, 2) as usize
}
fn extra(p: &Page) -> u32 {
    read_u32(p, 4)
}

fn leaf_key(p: &Page, idx: usize, ka: usize, out: &mut [u32]) {
    let off = HEADER + idx * ka * 4;
    for (i, o) in out.iter_mut().enumerate() {
        *o = read_u32(p, off + i * 4);
    }
}

fn internal_entry(p: &Page, idx: usize, ka: usize, key_out: &mut [u32]) -> u32 {
    let off = HEADER + idx * (ka * 4 + 4);
    for (i, o) in key_out.iter_mut().enumerate() {
        *o = read_u32(p, off + i * 4);
    }
    read_u32(p, off + ka * 4)
}

/// Compare a full key against a (possibly shorter) probe prefix.
fn cmp_prefix(key: &[u32], prefix: &[u32]) -> Ordering {
    key[..prefix.len()].cmp(prefix)
}

/// A read-only B+-tree over composite `u32` keys.
pub struct BTree {
    pager: SharedPager,
    fid: FileId,
    key_arity: usize,
    root: u32,
    height: u32,
    n_keys: u64,
    n_leaf_pages: u32,
    n_internal_pages: u32,
    /// When set (the paper's assumption), internal pages are served from
    /// this in-memory map and charged no I/O.
    internal_cache: Option<HashMap<u32, Page>>,
}

/// Streams sorted keys into a fresh B+-tree without per-key allocation.
pub struct BulkLoader {
    pager: SharedPager,
    fid: FileId,
    key_arity: usize,
    leaf: Page,
    leaf_first_key: Vec<u32>,
    /// `(first_key, page_no)` per completed leaf, for building the levels.
    level: Vec<(Vec<u32>, u32)>,
    n_keys: u64,
    last_key: Vec<u32>,
}

impl BulkLoader {
    /// Begin bulk-loading a tree with keys of `key_arity` columns.
    pub fn new(pager: SharedPager, key_arity: usize) -> Self {
        assert!(key_arity > 0 && key_arity * 4 <= PAGE_SIZE - HEADER);
        let fid = pager.lock().create_file();
        let mut leaf = Page::new();
        leaf.bytes_mut()[0] = KIND_LEAF;
        BulkLoader {
            pager,
            fid,
            key_arity,
            leaf,
            leaf_first_key: Vec::new(),
            level: Vec::new(),
            n_keys: 0,
            last_key: Vec::new(),
        }
    }

    /// Push the next key; keys must arrive in non-decreasing order.
    pub fn push(&mut self, key: &[u32]) -> Result<()> {
        if key.len() != self.key_arity {
            return Err(Error::ArityMismatch { expected: self.key_arity, got: key.len() });
        }
        if !self.last_key.is_empty() && key < self.last_key.as_slice() {
            return Err(Error::NotSorted);
        }
        self.last_key.clear();
        self.last_key.extend_from_slice(key);

        let ka = self.key_arity;
        let n = n_entries(&self.leaf);
        if n >= leaf_capacity(ka) {
            self.flush_leaf()?;
        }
        let n = n_entries(&self.leaf);
        if n == 0 {
            self.leaf_first_key.clear();
            self.leaf_first_key.extend_from_slice(key);
        }
        let off = HEADER + n * ka * 4;
        for (i, v) in key.iter().enumerate() {
            write_u32(&mut self.leaf, off + i * 4, *v);
        }
        write_u16(&mut self.leaf, 2, (n + 1) as u16);
        self.n_keys += 1;
        Ok(())
    }

    fn flush_leaf(&mut self) -> Result<()> {
        // Leaves are appended in order, so this leaf's page number is the
        // current file length and its successor (if any) is the next one.
        let mut leaf = std::mem::take(&mut self.leaf);
        leaf.bytes_mut()[0] = KIND_LEAF;
        let pno = self.pager.lock().n_pages(self.fid)?;
        write_u32(&mut leaf, 4, pno + 1); // provisional next pointer
        self.pager.lock().append_page(self.fid, leaf)?;
        self.level.push((self.leaf_first_key.clone(), pno));
        self.leaf = Page::new();
        self.leaf.bytes_mut()[0] = KIND_LEAF;
        Ok(())
    }

    /// Finish loading: builds the internal levels and returns the tree.
    pub fn finish(mut self) -> Result<BTree> {
        if n_entries(&self.leaf) > 0 || self.level.is_empty() {
            self.flush_leaf()?;
        }
        // Terminate the leaf chain.
        let last_leaf = self.level.last().expect("at least one leaf").1;
        {
            let mut pager = self.pager.lock();
            let mut page = pager.read_page(self.fid, last_leaf)?;
            write_u32(&mut page, 4, NO_NEXT);
            pager.write_page(self.fid, last_leaf, page)?;
        }
        let n_leaf_pages = self.level.len() as u32;

        let ka = self.key_arity;
        let mut level = self.level;
        let mut height = 1u32;
        let mut n_internal_pages = 0u32;
        while level.len() > 1 {
            height += 1;
            let cap = internal_capacity(ka);
            let mut next: Vec<(Vec<u32>, u32)> = Vec::with_capacity(level.len() / cap + 1);
            // Each node takes up to cap+1 children (leftmost + cap entries).
            for group in level.chunks(cap + 1) {
                let mut page = Page::new();
                page.bytes_mut()[0] = KIND_INTERNAL;
                write_u32(&mut page, 4, group[0].1); // leftmost child
                for (i, (key, child)) in group[1..].iter().enumerate() {
                    let off = HEADER + i * (ka * 4 + 4);
                    for (j, v) in key.iter().enumerate() {
                        write_u32(&mut page, off + j * 4, *v);
                    }
                    write_u32(&mut page, off + ka * 4, *child);
                }
                write_u16(&mut page, 2, (group.len() - 1) as u16);
                let pno = self.pager.lock().append_page(self.fid, page)?;
                n_internal_pages += 1;
                next.push((group[0].0.clone(), pno));
            }
            level = next;
        }
        let root = level[0].1;
        Ok(BTree {
            pager: self.pager,
            fid: self.fid,
            key_arity: ka,
            root,
            height,
            n_keys: self.n_keys,
            n_leaf_pages,
            n_internal_pages,
            internal_cache: None,
        })
    }
}

impl BTree {
    /// Bulk-load from a heap file whose rows are the (already sorted) keys.
    pub fn from_sorted_heapfile(file: &HeapFile) -> Result<BTree> {
        let mut loader = BulkLoader::new(file.pager().clone(), file.arity());
        let mut cursor = file.cursor();
        while let Some(row) = cursor.next_row()? {
            loader.push(row)?;
        }
        loader.finish()
    }

    /// Pin every internal page in memory (Section 3.2's assumption); from
    /// now on internal-node reads are not charged as I/O.
    pub fn cache_internal_nodes(&mut self) -> Result<()> {
        let mut cache = HashMap::with_capacity(self.n_internal_pages as usize);
        let n = self.pager.lock().n_pages(self.fid)?;
        for pno in self.n_leaf_pages..n {
            let page = self.pager.lock().read_page(self.fid, pno)?;
            debug_assert_eq!(node_kind(&page), KIND_INTERNAL);
            cache.insert(pno, page);
        }
        self.internal_cache = Some(cache);
        Ok(())
    }

    fn read_node(&self, pno: u32) -> Result<Page> {
        if let Some(cache) = &self.internal_cache {
            if let Some(page) = cache.get(&pno) {
                return Ok(page.clone());
            }
        }
        self.pager.lock().read_page(self.fid, pno)
    }

    /// Number of keys stored.
    pub fn n_keys(&self) -> u64 {
        self.n_keys
    }
    /// Number of leaf pages (the paper's "4,000 leaf pages" figure).
    pub fn n_leaf_pages(&self) -> u32 {
        self.n_leaf_pages
    }
    /// Number of internal pages (the paper's "14 non-leaf pages" figure).
    pub fn n_internal_pages(&self) -> u32 {
        self.n_internal_pages
    }
    /// Tree height in levels, counting the leaf level.
    pub fn height(&self) -> u32 {
        self.height
    }
    /// Key arity.
    pub fn key_arity(&self) -> usize {
        self.key_arity
    }

    /// Descend to the leftmost leaf that can contain keys `>=` the probe
    /// prefix. Returns its page number.
    fn descend(&self, prefix: &[u32]) -> Result<u32> {
        let mut pno = self.root;
        let ka = self.key_arity;
        let mut key_buf = vec![0u32; ka];
        loop {
            let page = self.read_node(pno)?;
            if node_kind(&page) == KIND_LEAF {
                return Ok(pno);
            }
            let n = n_entries(&page);
            let mut child = extra(&page); // leftmost
            for i in 0..n {
                let c = internal_entry(&page, i, ka, &mut key_buf);
                // Strictly-less: keys equal to the separator's prefix may
                // extend into the previous child, so only skip past
                // separators strictly below the probe.
                if cmp_prefix(&key_buf, prefix) == Ordering::Less {
                    child = c;
                } else {
                    break;
                }
            }
            pno = child;
        }
    }

    /// Visit every key whose leading columns equal `prefix`, in order.
    /// Returns the number of keys visited.
    pub fn scan_prefix<F: FnMut(&[u32])>(&self, prefix: &[u32], mut f: F) -> Result<u64> {
        assert!(!prefix.is_empty() && prefix.len() <= self.key_arity);
        let ka = self.key_arity;
        let mut pno = self.descend(prefix)?;
        let mut key = vec![0u32; ka];
        let mut count = 0u64;
        loop {
            let page = self.read_node(pno)?;
            let n = n_entries(&page);
            for i in 0..n {
                leaf_key(&page, i, ka, &mut key);
                match cmp_prefix(&key, prefix) {
                    Ordering::Less => continue,
                    Ordering::Equal => {
                        f(&key);
                        count += 1;
                    }
                    Ordering::Greater => return Ok(count),
                }
            }
            match extra(&page) {
                NO_NEXT => return Ok(count),
                next => pno = next,
            }
        }
    }

    /// Whether an exact key is present.
    pub fn contains(&self, key: &[u32]) -> Result<bool> {
        assert_eq!(key.len(), self.key_arity);
        let mut found = false;
        self.scan_prefix(key, |_| found = true)?;
        Ok(found)
    }

    /// Count keys matching a prefix without materializing them.
    pub fn count_prefix(&self, prefix: &[u32]) -> Result<u64> {
        self.scan_prefix(prefix, |_| {})
    }
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BTree(keys={}, height={}, leaves={}, internal={})",
            self.n_keys, self.height, self.n_leaf_pages, self.n_internal_pages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn load(pager: &SharedPager, keys: &[Vec<u32>]) -> BTree {
        let mut loader = BulkLoader::new(pager.clone(), keys[0].len());
        for k in keys {
            loader.push(k).unwrap();
        }
        loader.finish().unwrap()
    }

    #[test]
    fn capacities_match_paper_scale() {
        // (item, trans_id) 8-byte entries: paper rounds 500/leaf, exact 511.
        assert_eq!(leaf_capacity(2), 511);
        // 12-byte internal entries: paper rounds 333, exact 340.
        assert_eq!(internal_capacity(2), 340);
    }

    #[test]
    fn single_leaf_tree() {
        let pager = Pager::shared();
        let keys: Vec<Vec<u32>> = (0..10).map(|i| vec![i, 100 + i]).collect();
        let t = load(&pager, &keys);
        assert_eq!(t.height(), 1);
        assert_eq!(t.n_leaf_pages(), 1);
        assert_eq!(t.n_internal_pages(), 0);
        assert_eq!(t.n_keys(), 10);
        assert!(t.contains(&[3, 103]).unwrap());
        assert!(!t.contains(&[3, 104]).unwrap());
    }

    #[test]
    fn multi_level_tree_and_prefix_scan() {
        let pager = Pager::shared();
        // 40 items x 200 tids = 8000 keys -> 16 leaves -> height 2.
        let mut keys = Vec::new();
        for item in 0..40u32 {
            for tid in 0..200u32 {
                keys.push(vec![item, tid]);
            }
        }
        let t = load(&pager, &keys);
        assert!(t.height() >= 2);
        assert_eq!(t.n_keys(), 8000);
        let mut got = Vec::new();
        let n = t.scan_prefix(&[17], |k| got.push(k[1])).unwrap();
        assert_eq!(n, 200);
        assert_eq!(got, (0..200).collect::<Vec<u32>>());
        // Prefix with no matches.
        assert_eq!(t.count_prefix(&[99]).unwrap(), 0);
    }

    #[test]
    fn duplicate_keys_spanning_leaves_are_all_found() {
        let pager = Pager::shared();
        // 1500 copies of the same key surrounded by neighbors: the run
        // spans ~3 leaves and crosses internal separators.
        let mut keys = vec![vec![1u32, 0u32]];
        keys.extend(std::iter::repeat_n(vec![5u32, 7u32], 1500));
        keys.push(vec![9, 0]);
        let t = load(&pager, &keys);
        assert_eq!(t.count_prefix(&[5, 7]).unwrap(), 1500);
        assert_eq!(t.count_prefix(&[5]).unwrap(), 1500);
        assert_eq!(t.count_prefix(&[1]).unwrap(), 1);
        assert_eq!(t.count_prefix(&[9]).unwrap(), 1);
    }

    #[test]
    fn unsorted_input_is_rejected() {
        let pager = Pager::shared();
        let mut loader = BulkLoader::new(pager, 1);
        loader.push(&[5]).unwrap();
        assert_eq!(loader.push(&[3]), Err(Error::NotSorted));
    }

    #[test]
    fn internal_cache_eliminates_descent_io() {
        let pager = Pager::shared();
        let keys: Vec<Vec<u32>> = (0..8000u32).map(|i| vec![i / 200, i % 200]).collect();
        let t = load(&pager, &keys);
        assert!(t.n_internal_pages() >= 1);

        pager.lock().reset_stats();
        assert_eq!(t.count_prefix(&[17]).unwrap(), 200);
        let uncached = pager.lock().stats().reads();

        let mut t = t;
        t.cache_internal_nodes().unwrap();
        pager.lock().reset_stats();
        assert_eq!(t.count_prefix(&[17]).unwrap(), 200);
        let cached = pager.lock().stats().reads();

        // Caching internal nodes removes exactly the descent reads
        // (height - 1 internal pages per probe).
        assert_eq!(cached + (t.height() as u64 - 1), uncached);
        // A 200-key run fits in one 511-entry leaf, so at most three leaf
        // pages are touched (start-boundary, the run, end-boundary).
        assert!(cached <= 3, "expected <=3 leaf reads, got {cached}");
    }

    #[test]
    fn from_sorted_heapfile_round_trips() {
        let pager = Pager::shared();
        let rows: Vec<Vec<u32>> = (0..1000).map(|i| vec![i % 10, i]).collect();
        let mut sorted = rows.clone();
        sorted.sort();
        let hf =
            HeapFile::from_rows(pager.clone(), 2, sorted.iter().map(|r| r.as_slice())).unwrap();
        let t = BTree::from_sorted_heapfile(&hf).unwrap();
        assert_eq!(t.n_keys(), 1000);
        for item in 0..10u32 {
            assert_eq!(t.count_prefix(&[item]).unwrap(), 100);
        }
    }

    #[test]
    fn empty_tree_behaves() {
        let pager = Pager::shared();
        let loader = BulkLoader::new(pager, 2);
        let t = loader.finish().unwrap();
        assert_eq!(t.n_keys(), 0);
        assert_eq!(t.n_leaf_pages(), 1);
        assert_eq!(t.count_prefix(&[1]).unwrap(), 0);
    }

    #[test]
    fn paper_index_sizing_at_scale_is_close() {
        // A scaled-down version of Section 3.2's sizing: 100k 8-byte keys.
        let pager = Pager::shared();
        let mut loader = BulkLoader::new(pager, 2);
        for i in 0..100_000u32 {
            loader.push(&[i / 100, i % 100]).unwrap();
        }
        let t = loader.finish().unwrap();
        // ceil(100000/511) = 196 leaves; paper arithmetic (500/leaf) = 200.
        assert_eq!(t.n_leaf_pages(), 196);
        assert_eq!(t.height(), 2);
        assert_eq!(t.n_internal_pages(), 1);
    }
}
