//! Shared buffer pool with weighted per-owner admission quotas.
//!
//! The parallel engine used to split its `cache_frames` budget evenly
//! across per-shard pagers — the integer remainder was dropped and an
//! idle shard's frames were dead weight. [`BufferPool`] replaces that
//! split with one pool of frames shared by every attached pager:
//!
//! * **Admission quotas.** Each attached owner (a shard's pager) holds a
//!   frame quota proportional to its weight (its share of `SALES` rows at
//!   layout time, re-weighted by live `|R_{k-1}|` between iterations).
//!   Within its quota an owner runs the same CLOCK second-chance
//!   replacement as the private per-pager cache — so a single-owner pool
//!   is bit-for-bit the old cache.
//! * **Sharded locking.** Frames are partitioned by owner and each
//!   owner's region sits behind its own mutex, so concurrent shard
//!   workers never contend. The free-frame reserve is a lock-free atomic
//!   counter, so no path ever holds two locks in conflicting order
//!   (admission steals touch it while holding a region lock; rebalance
//!   and detach touch it around region locks — with a mutex reserve that
//!   was a latent deadlock). The only nested locking left is
//!   [`BufferPool::rebalance`] taking the owner list before each region,
//!   a single fixed order. Quota *re-division* (attach, rebalance) still
//!   runs from deterministic single-threaded points in the engine's use.
//! * **Stealing.** Frames not claimed by any live owner sit in a free
//!   reserve. An owner whose quota is exhausted *steals* from the
//!   reserve before evicting its own pages, and [`BufferPool::rebalance`]
//!   moves frames from owners whose live weight collapsed (idle shards)
//!   to the ones still carrying tuples. Every stolen frame is counted —
//!   the `pool_steals` column of
//!   [`IoStats`](crate::pager::IoStats) — and owners release their
//!   frames back to the reserve on detach (drop).
//!
//! Determinism: quotas are a pure function of the weights, CLOCK
//! eviction is a pure function of the per-owner access sequence, and the
//! engine only touches the shared reserve between parallel phases — so
//! charged page accesses are identical run to run for a given
//! configuration and thread count (gated by `repro -- check-baseline`).

use crate::page::Page;
use crate::pager::{Cache, FileId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// Split `total` frames proportionally to `weights` (largest-remainder
/// apportionment; ties go to the heavier owner, then the lower index).
/// The returned shares always sum to exactly `total`.
pub fn distribute_frames(total: usize, weights: &[u64]) -> Vec<usize> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: u64 = weights.iter().sum();
    if sum == 0 {
        return split_frames_evenly(total, weights);
    }
    let mut shares: Vec<usize> = Vec::with_capacity(weights.len());
    let mut fractions: Vec<(u64, u64, usize)> = Vec::with_capacity(weights.len());
    let mut granted = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as u128 * w as u128;
        let floor = (exact / sum as u128) as usize;
        let frac = (exact % sum as u128) as u64;
        shares.push(floor);
        granted += floor;
        fractions.push((frac, w, i));
    }
    // Largest fractional part first; heavier weight, then lower index,
    // breaks ties — deterministic for any input.
    fractions.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)).then(a.2.cmp(&b.2)));
    for &(_, _, i) in fractions.iter().take(total - granted) {
        shares[i] += 1;
    }
    shares
}

/// The legacy even split, remainder-corrected: every owner gets
/// `total / n` frames and the `total % n` leftover frames go one each to
/// the heaviest owners (ties to the lower index) instead of being
/// silently dropped. The shares always sum to exactly `total`.
pub fn split_frames_evenly(total: usize, weights: &[u64]) -> Vec<usize> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let base = total / n;
    let remainder = total % n;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut shares = vec![base; n];
    for &i in order.iter().take(remainder) {
        shares[i] += 1;
    }
    shares
}

/// One owner's region of the pool: a CLOCK cache whose capacity is the
/// owner's current frame allocation (quota plus stolen frames).
struct OwnerRegion {
    cache: Cache,
}

struct PoolInner {
    frames: usize,
    /// Frames claimed by no live owner — the steal reserve. Atomic (not
    /// a mutex) so it can be touched while a region lock is held without
    /// establishing a lock order ([`take_up_to`]).
    free: AtomicUsize,
    /// Live owners in attach order, for `rebalance`. Weak: an owner's
    /// frames return to `free` when its handle drops, not when the pool
    /// forgets it.
    owners: Mutex<Vec<Weak<Mutex<OwnerRegion>>>>,
    /// Lifetime telemetry: re-divisions applied and frames that changed
    /// owner across them. Monotonic over the pool's life (never reset by
    /// attach cycles), for export to a metrics layer.
    rebalances: AtomicU64,
    frames_moved: AtomicU64,
}

/// A shared, concurrently accessible pool of buffer frames. Cheap to
/// clone (it is an `Arc`); see the module docs for the design.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// A pool of `frames` page frames, all initially in the free reserve.
    pub fn new(frames: usize) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                frames,
                free: AtomicUsize::new(frames),
                owners: Mutex::new(Vec::new()),
                rebalances: AtomicU64::new(0),
                frames_moved: AtomicU64::new(0),
            }),
        }
    }

    /// Total frame budget of the pool.
    pub fn frames(&self) -> usize {
        self.inner.frames
    }

    /// Frames currently in the steal reserve (claimed by no owner).
    pub fn free_frames(&self) -> usize {
        self.inner.free.load(Ordering::SeqCst)
    }

    /// Lifetime count of adaptive re-divisions applied (rebalance calls
    /// that matched the live owner layout, whether or not frames moved).
    pub fn lifetime_rebalances(&self) -> u64 {
        self.inner.rebalances.load(Ordering::Relaxed)
    }

    /// Lifetime count of frames that changed owner across all
    /// re-divisions — the cumulative form of the per-call return of
    /// [`BufferPool::rebalance`].
    pub fn lifetime_frames_moved(&self) -> u64 {
        self.inner.frames_moved.load(Ordering::Relaxed)
    }

    /// Attach one owner per weight, dividing the *currently free* frames
    /// proportionally ([`distribute_frames`]). The engine calls this once
    /// per shard layout — on a fresh pool, or after the previous layout's
    /// handles dropped — so the whole budget is always (re)granted.
    pub fn attach_weighted(&self, weights: &[u64]) -> Vec<PoolHandle> {
        let mut owners = lock(&self.inner.owners);
        owners.retain(|w| w.strong_count() > 0);
        let quotas = distribute_frames(self.free_frames(), weights);
        let mut handles = Vec::with_capacity(quotas.len());
        for quota in quotas {
            let granted = take_up_to(&self.inner.free, quota);
            debug_assert_eq!(
                granted, quota,
                "attach must not race concurrent steals (single-threaded convention)"
            );
            let region = Arc::new(Mutex::new(OwnerRegion { cache: Cache::new(granted) }));
            owners.push(Arc::downgrade(&region));
            handles.push(PoolHandle { pool: Arc::clone(&self.inner), region });
        }
        handles
    }

    /// Adaptively re-divide the attached owners' frames in proportion to
    /// `weights` (one per live owner, in attach order). Shrunk owners
    /// evict their coldest pages (CLOCK order); grown owners gain the
    /// frames. Returns the number of frames that changed owner — the
    /// steal count the engine attributes to the current iteration. Must
    /// be called from one thread with no concurrent pool access (the
    /// engine calls it between parallel phases).
    pub fn rebalance(&self, weights: &[u64]) -> u64 {
        let mut owners = lock(&self.inner.owners);
        owners.retain(|w| w.strong_count() > 0);
        let regions: Vec<Arc<Mutex<OwnerRegion>>> =
            owners.iter().filter_map(Weak::upgrade).collect();
        if regions.len() != weights.len() {
            return 0; // caller's weight list is stale; keep the layout
        }
        let held: usize = regions.iter().map(|r| lock(r).cache.capacity()).sum();
        let targets = distribute_frames(held + self.free_frames(), weights);
        let mut moved = 0u64;
        // Shrink first so the freed frames are available to the growers.
        for (region, &target) in regions.iter().zip(&targets) {
            let mut region = lock(region);
            let have = region.cache.capacity();
            if target < have {
                region.cache.set_capacity(target);
                self.inner.free.fetch_add(have - target, Ordering::SeqCst);
            }
        }
        for (region, &target) in regions.iter().zip(&targets) {
            let mut region = lock(region);
            let have = region.cache.capacity();
            if target > have {
                let gain = take_up_to(&self.inner.free, target - have);
                moved += gain as u64;
                region.cache.set_capacity(have + gain);
            }
        }
        self.inner.rebalances.fetch_add(1, Ordering::Relaxed);
        self.inner.frames_moved.fetch_add(moved, Ordering::Relaxed);
        moved
    }
}

/// One owner's attachment to a [`BufferPool`] — what a
/// [`Pager`](crate::pager::Pager) holds when pooled. Dropping the handle
/// detaches the owner and returns its frames to the pool's free reserve.
pub struct PoolHandle {
    pool: Arc<PoolInner>,
    region: Arc<Mutex<OwnerRegion>>,
}

impl PoolHandle {
    /// Look up a page in the owner's region.
    pub fn get(&self, fid: FileId, pno: u32) -> Option<Page> {
        lock(&self.region).cache.get((fid, pno)).cloned()
    }

    /// Admit a page. When the owner's region is full, one frame is stolen
    /// from the pool's free reserve if any is available (returned as the
    /// steal count, for [`IoStats::pool_steals`]); otherwise the owner's
    /// own coldest page is evicted.
    ///
    /// [`IoStats::pool_steals`]: crate::pager::IoStats::pool_steals
    pub fn put(&self, fid: FileId, pno: u32, page: Page) -> u64 {
        let mut region = lock(&self.region);
        let mut stole = 0u64;
        if region.cache.is_full() && !region.cache.contains((fid, pno)) {
            // Lock-free reserve claim: safe under the region lock because
            // it can never block (no lock order with detach/rebalance).
            if take_up_to(&self.pool.free, 1) == 1 {
                let cap = region.cache.capacity();
                region.cache.set_capacity(cap + 1);
                stole = 1;
            }
        }
        region.cache.put((fid, pno), page);
        stole
    }

    /// Drop every cached page of a freed file (frames stay with the
    /// owner).
    pub fn evict_file(&self, fid: FileId) {
        lock(&self.region).cache.evict_file(fid);
    }

    /// The owner's current frame allocation (quota plus stolen frames).
    pub fn frames(&self) -> usize {
        lock(&self.region).cache.capacity()
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        let mut region = lock(&self.region);
        let freed = region.cache.capacity();
        region.cache.set_capacity(0);
        self.pool.free.fetch_add(freed, Ordering::SeqCst);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Claim up to `want` frames from the free reserve, returning how many
/// were taken. Lock-free, so callers may hold a region lock.
fn take_up_to(free: &AtomicUsize, want: usize) -> usize {
    let mut taken = 0;
    let _ = free.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| {
        taken = f.min(want);
        Some(f - taken)
    });
    taken
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    #[test]
    fn distribute_frames_is_exact_and_weight_proportional() {
        assert_eq!(distribute_frames(10, &[1, 1]), vec![5, 5]);
        // 10 × 3/4 = 7.5 and 10 × 1/4 = 2.5: the fractional tie goes to
        // the heavier owner.
        assert_eq!(distribute_frames(10, &[3, 1]), vec![8, 2]);
        // Remainders go to the heaviest owners, never on the floor.
        assert_eq!(distribute_frames(7, &[5, 3, 1]), vec![4, 2, 1]);
        assert_eq!(distribute_frames(7, &[1, 1, 1]).iter().sum::<usize>(), 7);
        assert_eq!(distribute_frames(2, &[1, 1, 1, 1]).iter().sum::<usize>(), 2);
        // Zero total weight degrades to the even split.
        assert_eq!(distribute_frames(5, &[0, 0]), vec![3, 2]);
        for (total, weights) in
            [(255usize, vec![17u64, 9, 31, 2]), (1, vec![1, 1000]), (0, vec![4, 4])]
        {
            let shares = distribute_frames(total, &weights);
            assert_eq!(shares.iter().sum::<usize>(), total, "{total} over {weights:?}");
        }
    }

    #[test]
    fn split_frames_evenly_sends_remainder_to_heaviest() {
        // The old code computed 7 / 3 = 2 per shard and dropped 1 frame.
        assert_eq!(split_frames_evenly(7, &[10, 30, 20]), vec![2, 3, 2]);
        assert_eq!(split_frames_evenly(11, &[1, 1, 1, 1]), vec![3, 3, 3, 2]);
        for (total, weights) in [(7usize, vec![1u64, 2, 3]), (256, vec![9, 9, 9, 9, 9])] {
            let shares = split_frames_evenly(total, &weights);
            assert_eq!(shares.iter().sum::<usize>(), total, "total frames granted");
        }
    }

    #[test]
    fn attach_weighted_grants_the_whole_budget() {
        let pool = BufferPool::new(10);
        let handles = pool.attach_weighted(&[3, 1]);
        assert_eq!(handles.iter().map(PoolHandle::frames).collect::<Vec<_>>(), vec![8, 2]);
        assert_eq!(pool.free_frames(), 0);
        drop(handles);
        assert_eq!(pool.free_frames(), 10, "detach returns every frame");
    }

    #[test]
    fn put_steals_free_frames_before_evicting() {
        let pool = BufferPool::new(4);
        let mut handles = pool.attach_weighted(&[1, 1]);
        let b = handles.pop().expect("two owners");
        let a = handles.pop().expect("two owners");
        let fid = FileId(0);
        // Fill owner a's quota of 2 frames...
        assert_eq!(a.put(fid, 0, Page::new()), 0);
        assert_eq!(a.put(fid, 1, Page::new()), 0);
        // ...then detach the idle owner: its 2 frames hit the reserve.
        drop(b);
        assert_eq!(pool.free_frames(), 2);
        // Over-quota admissions steal from the reserve instead of
        // evicting a's own pages.
        assert_eq!(a.put(fid, 2, Page::new()), 1);
        assert_eq!(a.put(fid, 3, Page::new()), 1);
        assert_eq!(pool.free_frames(), 0);
        assert_eq!(a.frames(), 4);
        for pno in 0..4 {
            assert!(a.get(fid, pno).is_some(), "page {pno} still resident");
        }
        // Reserve dry: the next admission falls back to CLOCK eviction.
        assert_eq!(a.put(fid, 4, Page::new()), 0);
        assert!(a.get(fid, 4).is_some());
        assert_eq!(a.frames(), 4, "no growth without free frames");
    }

    #[test]
    fn rebalance_moves_frames_toward_live_weight() {
        let pool = BufferPool::new(8);
        let handles = pool.attach_weighted(&[1, 1]);
        assert_eq!(handles[0].frames(), 4);
        // Owner 0's residue collapsed, owner 1 is carrying the run.
        let moved = pool.rebalance(&[1, 7]);
        assert_eq!(moved, 3);
        assert_eq!(handles[0].frames(), 1);
        assert_eq!(handles[1].frames(), 7);
        assert_eq!(pool.free_frames(), 0);
        // Equal weights move them back.
        assert_eq!(pool.rebalance(&[1, 1]), 3);
        assert_eq!(handles[0].frames(), 4);
        // The lifetime counters accumulate across re-divisions; a
        // stale-weights call (wrong owner count) counts in neither.
        assert_eq!(pool.lifetime_rebalances(), 2);
        assert_eq!(pool.lifetime_frames_moved(), 6);
        assert_eq!(pool.rebalance(&[1, 1, 1]), 0);
        assert_eq!(pool.lifetime_rebalances(), 2);
        assert_eq!(pool.lifetime_frames_moved(), 6);
    }

    #[test]
    fn rebalance_shrink_after_evict_file_does_not_panic() {
        // Regression: freeing a file whose pages sat in the trailing
        // cache slots left the owner's CLOCK hand past the shortened
        // slot vector; a rebalance shrink then indexed out of bounds.
        let pool = BufferPool::new(8);
        let handles = pool.attach_weighted(&[1, 1]);
        let keep = FileId(0);
        let gone = FileId(1);
        // Fill owner 0's 4 frames and walk the hand to the last slot,
        // leaving `gone`'s page as the trailing occupant.
        handles[0].put(keep, 0, Page::new());
        handles[0].put(keep, 1, Page::new());
        handles[0].put(keep, 2, Page::new());
        handles[0].put(gone, 0, Page::new());
        handles[0].put(keep, 3, Page::new()); // sweep: hand -> 1
        handles[0].put(keep, 4, Page::new()); // sweep: hand -> 2
        handles[0].put(keep, 5, Page::new()); // sweep: hand -> 3
        handles[0].evict_file(gone); // trailing pop, hand stays at 3
        // Shrink owner 0 at-or-below the stale hand via rebalance.
        let moved = pool.rebalance(&[1, 3]);
        assert_eq!(moved, 2);
        assert_eq!(handles[0].frames(), 2);
        assert_eq!(handles[1].frames(), 6);
        // The survivor region still admits and serves pages.
        assert_eq!(handles[0].put(keep, 6, Page::new()), 0);
        assert!(handles[0].get(keep, 6).is_some());
    }

    #[test]
    fn rebalance_evicts_from_shrunk_owners() {
        let pool = BufferPool::new(4);
        let handles = pool.attach_weighted(&[1, 1]);
        let fid = FileId(0);
        handles[0].put(fid, 0, Page::new());
        handles[0].put(fid, 1, Page::new());
        pool.rebalance(&[0, 1]);
        assert_eq!(handles[0].frames(), 0);
        assert!(handles[0].get(fid, 0).is_none(), "shrunk to zero: everything evicted");
        assert!(handles[0].get(fid, 1).is_none());
        assert_eq!(handles[1].frames(), 4);
    }

    #[test]
    fn single_owner_pool_behaves_like_a_private_cache() {
        // The same access pattern through a pooled pager and a private
        // cache charges identical stats.
        let run = |pooled: bool| {
            let shared = Pager::shared();
            let pool = BufferPool::new(2);
            {
                let mut p = shared.lock();
                if pooled {
                    p.attach_pool(pool.attach_weighted(&[1]).pop().expect("one owner"));
                } else {
                    p.set_cache_frames(2);
                }
            }
            let mut p = shared.lock();
            let f = p.create_file();
            for i in 0..3u32 {
                let mut page = Page::new();
                page.push_record(&[i]).unwrap();
                p.append_page(f, page).unwrap();
            }
            p.reset_stats();
            for pno in [0u32, 1, 2, 2, 0, 1] {
                p.read_page(f, pno).unwrap();
            }
            p.stats()
        };
        assert_eq!(run(true), run(false));
    }
}
