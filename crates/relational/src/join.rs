//! Join operators.
//!
//! * [`merge_scan_join`] — the paper's second primitive ("merge-scan
//!   join"): both inputs sorted on the join key, a single interleaved
//!   sequential pass over each.
//! * [`index_nested_loop_join`] — the Section 3 strategy: probe a B+-tree
//!   once per outer row (the access pattern whose random-I/O cost the
//!   paper's analysis condemns).
//!
//! Both operators materialize their output as a new heap file, matching
//! the paper's fully-materialized `R'_k` relations.

use crate::btree::BTree;
use crate::errors::Result;
use crate::heap::{HeapCursor, HeapFile, HeapFileBuilder};
use std::cmp::Ordering;

/// Reads a sorted cursor group-by-group on a key-column prefix.
struct GroupReader<'a> {
    cursor: HeapCursor<'a>,
    key_cols: &'a [usize],
    /// One-row lookahead that belongs to the *next* group (reused buffer;
    /// valid only when `has_pending`).
    pending: Vec<u32>,
    has_pending: bool,
}

/// A reusable group buffer: the key and the flat row-major group rows.
/// One pair of these lives for the whole join — the hot loop performs no
/// per-group allocation.
struct Group {
    key: Vec<u32>,
    rows: Vec<u32>,
    arity: usize,
}

impl Group {
    fn new(arity: usize) -> Self {
        Group { key: Vec::new(), rows: Vec::new(), arity }
    }

    fn iter(&self) -> impl Iterator<Item = &[u32]> {
        self.rows.chunks_exact(self.arity)
    }
}

impl<'a> GroupReader<'a> {
    fn new(file: &'a HeapFile, key_cols: &'a [usize]) -> Self {
        GroupReader { cursor: file.cursor(), key_cols, pending: Vec::new(), has_pending: false }
    }

    /// Fill `group` with the next group's key and rows; returns `false`
    /// at end of input. Buffers are cleared and reused, never reallocated
    /// once warm.
    fn next_group_into(&mut self, group: &mut Group) -> Result<bool> {
        group.key.clear();
        group.rows.clear();
        if self.has_pending {
            group.rows.extend_from_slice(&self.pending);
            self.has_pending = false;
        } else {
            match self.cursor.next_row()? {
                Some(r) => group.rows.extend_from_slice(r),
                None => return Ok(false),
            }
        }
        group.key.extend(self.key_cols.iter().map(|&c| group.rows[c]));
        loop {
            match self.cursor.next_row()? {
                None => break,
                Some(r) => {
                    let same =
                        self.key_cols.iter().enumerate().all(|(i, &c)| r[c] == group.key[i]);
                    if same {
                        group.rows.extend_from_slice(r);
                    } else {
                        self.pending.clear();
                        self.pending.extend_from_slice(r);
                        self.has_pending = true;
                        break;
                    }
                }
            }
        }
        Ok(true)
    }
}

/// Merge-scan join of two heap files sorted on their respective key
/// columns. For each pair of matching groups, every left×right row pair
/// that passes `residual` is passed to `project`, which appends the output
/// row (of `out_arity` columns) into the provided buffer.
pub fn merge_scan_join<Fr, Fp>(
    left: &HeapFile,
    right: &HeapFile,
    left_key: &[usize],
    right_key: &[usize],
    out_arity: usize,
    mut residual: Fr,
    mut project: Fp,
) -> Result<HeapFile>
where
    Fr: FnMut(&[u32], &[u32]) -> bool,
    Fp: FnMut(&[u32], &[u32], &mut Vec<u32>),
{
    assert_eq!(left_key.len(), right_key.len(), "join keys must have equal arity");
    let pager = left.pager().clone();
    let mut out = HeapFileBuilder::new(pager, out_arity);
    let mut lr = GroupReader::new(left, left_key);
    let mut rr = GroupReader::new(right, right_key);

    // All scratch space for the scan: two group buffers and one output
    // row, reused for the entire join.
    let mut lg = Group::new(left.arity());
    let mut rg = Group::new(right.arity());
    let mut buf: Vec<u32> = Vec::with_capacity(out_arity);
    let mut has_l = lr.next_group_into(&mut lg)?;
    let mut has_r = rr.next_group_into(&mut rg)?;
    while has_l && has_r {
        match lg.key.cmp(&rg.key) {
            Ordering::Less => has_l = lr.next_group_into(&mut lg)?,
            Ordering::Greater => has_r = rr.next_group_into(&mut rg)?,
            Ordering::Equal => {
                for lrow in lg.iter() {
                    for rrow in rg.iter() {
                        if residual(lrow, rrow) {
                            buf.clear();
                            project(lrow, rrow, &mut buf);
                            debug_assert_eq!(buf.len(), out_arity);
                            out.push(&buf)?;
                        }
                    }
                }
                has_l = lr.next_group_into(&mut lg)?;
                has_r = rr.next_group_into(&mut rg)?;
            }
        }
    }
    out.finish()
}

/// Index nested-loop join: for every outer row, probe the B+-tree with the
/// key formed from `probe_cols` of the outer row; matching index keys that
/// pass `residual` are projected into the output.
pub fn index_nested_loop_join<Fr, Fp>(
    outer: &HeapFile,
    index: &BTree,
    probe_cols: &[usize],
    out_arity: usize,
    mut residual: Fr,
    mut project: Fp,
) -> Result<HeapFile>
where
    Fr: FnMut(&[u32], &[u32]) -> bool,
    Fp: FnMut(&[u32], &[u32], &mut Vec<u32>),
{
    assert!(probe_cols.len() <= index.key_arity());
    let pager = outer.pager().clone();
    let mut out = HeapFileBuilder::new(pager, out_arity);
    let mut cursor = outer.cursor();
    let mut probe = vec![0u32; probe_cols.len()];
    let mut buf: Vec<u32> = Vec::with_capacity(out_arity);
    let mut pending: Result<()> = Ok(());
    while let Some(orow) = cursor.next_row()? {
        for (i, &c) in probe_cols.iter().enumerate() {
            probe[i] = orow[c];
        }
        index.scan_prefix(&probe, |ikey| {
            if residual(orow, ikey) {
                buf.clear();
                project(orow, ikey, &mut buf);
                debug_assert_eq!(buf.len(), out_arity);
                if let Err(e) = out.push(&buf) {
                    pending = Err(e);
                }
            }
        })?;
        pending.clone()?;
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::btree::BulkLoader;
    use crate::pager::Pager;

    fn hf(pager: &crate::pager::SharedPager, rows: &[Vec<u32>], arity: usize) -> HeapFile {
        HeapFile::from_rows(pager.clone(), arity, rows.iter().map(|r| r.as_slice())).unwrap()
    }

    #[test]
    fn merge_join_matches_equal_groups() {
        let pager = Pager::shared();
        // left(tid, x) sorted on tid; right(tid, y) sorted on tid.
        let left = hf(&pager, &[vec![1, 10], vec![2, 20], vec![2, 21], vec![4, 40]], 2);
        let right = hf(&pager, &[vec![2, 200], vec![3, 300], vec![4, 400], vec![4, 401]], 2);
        let out = merge_scan_join(&left, &right, &[0], &[0], 3, |_, _| true, |l, r, b| {
            b.extend_from_slice(&[l[0], l[1], r[1]]);
        })
        .unwrap();
        assert_eq!(
            out.rows().unwrap(),
            vec![vec![2, 20, 200], vec![2, 21, 200], vec![4, 40, 400], vec![4, 40, 401]]
        );
    }

    #[test]
    fn merge_join_residual_filters_pairs() {
        let pager = Pager::shared();
        // The SETM extension join: q.item > p.item within a transaction.
        let left = hf(&pager, &[vec![1, 2], vec![1, 5]], 2);
        let right = hf(&pager, &[vec![1, 2], vec![1, 5], vec![1, 7]], 2);
        let out = merge_scan_join(&left, &right, &[0], &[0], 3, |l, r| r[1] > l[1], |l, r, b| {
            b.extend_from_slice(&[l[0], l[1], r[1]]);
        })
        .unwrap();
        assert_eq!(
            out.rows().unwrap(),
            vec![vec![1, 2, 5], vec![1, 2, 7], vec![1, 5, 7]]
        );
    }

    #[test]
    fn merge_join_empty_sides() {
        let pager = Pager::shared();
        let left = hf(&pager, &[vec![1, 1]], 2);
        let empty = HeapFile::empty(pager.clone(), 2).unwrap();
        let out = merge_scan_join(&left, &empty, &[0], &[0], 2, |_, _| true, |l, _, b| {
            b.extend_from_slice(l);
        })
        .unwrap();
        assert_eq!(out.n_records(), 0);
        let out = merge_scan_join(&empty, &left, &[0], &[0], 2, |_, _| true, |l, _, b| {
            b.extend_from_slice(l);
        })
        .unwrap();
        assert_eq!(out.n_records(), 0);
    }

    #[test]
    fn merge_join_cross_product_within_group() {
        let pager = Pager::shared();
        let left = hf(&pager, &[vec![7, 1], vec![7, 2], vec![7, 3]], 2);
        let right = hf(&pager, &[vec![7, 10], vec![7, 20]], 2);
        let out = merge_scan_join(&left, &right, &[0], &[0], 2, |_, _| true, |l, r, b| {
            b.extend_from_slice(&[l[1], r[1]]);
        })
        .unwrap();
        assert_eq!(out.n_records(), 6);
    }

    #[test]
    fn index_nested_loop_equals_merge_join() {
        let pager = Pager::shared();
        let mut left_rows = Vec::new();
        let mut right_rows = Vec::new();
        for tid in 0..50u32 {
            for j in 0..(tid % 4) {
                left_rows.push(vec![tid, j]);
                right_rows.push(vec![tid, 100 + j]);
            }
        }
        let left = hf(&pager, &left_rows, 2);
        let right = hf(&pager, &right_rows, 2);
        let merged = merge_scan_join(&left, &right, &[0], &[0], 3, |_, _| true, |l, r, b| {
            b.extend_from_slice(&[l[0], l[1], r[1]]);
        })
        .unwrap();

        // Same join via an index on right(tid, y).
        let mut loader = BulkLoader::new(pager.clone(), 2);
        for r in &right_rows {
            loader.push(r).unwrap();
        }
        let idx = loader.finish().unwrap();
        let indexed = index_nested_loop_join(&left, &idx, &[0], 3, |_, _| true, |l, k, b| {
            b.extend_from_slice(&[l[0], l[1], k[1]]);
        })
        .unwrap();

        let mut a = merged.rows().unwrap();
        let mut b = indexed.rows().unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn index_join_charges_random_io_merge_join_sequential() {
        // The heart of the paper's Section 3 vs Section 4 argument.
        let pager = Pager::shared();
        let n = 4000u32;
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i, i]).collect();
        let left = hf(&pager, &rows, 2);
        let right = hf(&pager, &rows, 2);
        let mut loader = BulkLoader::new(pager.clone(), 2);
        for r in &rows {
            loader.push(r).unwrap();
        }
        let mut idx = loader.finish().unwrap();
        idx.cache_internal_nodes().unwrap();

        pager.lock().reset_stats();
        merge_scan_join(&left, &right, &[0], &[0], 2, |_, _| true, |l, _, b| {
            b.extend_from_slice(l);
        })
        .unwrap();
        let merge_stats = pager.lock().stats();

        pager.lock().reset_stats();
        index_nested_loop_join(&left, &idx, &[0], 2, |_, _| true, |l, _, b| {
            b.extend_from_slice(l);
        })
        .unwrap();
        let index_stats = pager.lock().stats();

        assert!(
            merge_stats.rand_reads < index_stats.rand_reads,
            "merge join should be mostly sequential: merge={merge_stats:?} index={index_stats:?}"
        );
    }
}
