//! Simulated disk: files of 4 KiB pages with I/O accounting.
//!
//! The paper's evaluation is phrased entirely in page accesses: Section 3.2
//! charges 20 ms per *random* page fetch, Section 4.3 charges 10 ms per
//! *sequential* page access. The pager classifies every read and write as
//! sequential (next page after the previous access to the same file, or the
//! first access to a file) or random, so measured runs can be priced with
//! the paper's own constants and compared against `setm-costmodel`.
//!
//! An optional buffer cache (CLOCK eviction, write-through) models the
//! "non-leaf index pages reside in memory" assumption of Section 3.2 and
//! supports the buffer-size ablation (E8; see docs/REPRODUCTION.md,
//! Design notes §3). The cache is either *private* to the pager
//! ([`Pager::set_cache_frames`]; `0` frames disables caching entirely —
//! every access is charged, the worst-case accounting the paper's
//! formulas assume) or an attachment to a shared [`BufferPool`]
//! ([`Pager::attach_pool`]; see [`crate::pool`], Design notes §11).
//!
//! [`BufferPool`]: crate::pool::BufferPool

use crate::errors::{Error, Result};
use crate::page::Page;
use crate::pool::PoolHandle;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifier of a simulated file (a growable sequence of pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Per-access costs in milliseconds. `paper()` uses the constants of
/// Sections 3.2 and 4.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub seq_ms: f64,
    pub rand_ms: f64,
}

impl CostModel {
    /// The paper's constants: 10 ms sequential, 20 ms random.
    pub fn paper() -> Self {
        CostModel { seq_ms: 10.0, rand_ms: 20.0 }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Counts of page accesses since the last reset, split by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    pub seq_reads: u64,
    pub rand_reads: u64,
    pub seq_writes: u64,
    pub rand_writes: u64,
    /// Reads absorbed by the buffer cache (not charged as I/O).
    pub cache_hits: u64,
    /// Frames this pager's shared-pool owner stole from the pool's free
    /// reserve on admission (see [`crate::pool`]). Zero for private
    /// caches. Not an I/O access — never charged.
    pub pool_steals: u64,
}

impl IoStats {
    /// Total page reads that hit the simulated disk.
    pub fn reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// Total page writes.
    pub fn writes(&self) -> u64 {
        self.seq_writes + self.rand_writes
    }

    /// Total disk page accesses (the unit of the paper's formulas).
    pub fn accesses(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Price these accesses under a cost model, in milliseconds.
    pub fn estimated_ms(&self, model: &CostModel) -> f64 {
        (self.seq_reads + self.seq_writes) as f64 * model.seq_ms
            + (self.rand_reads + self.rand_writes) as f64 * model.rand_ms
    }

    /// Component-wise sum, for aggregating the pagers of a sharded run.
    pub fn plus(&self, other: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads + other.seq_reads,
            rand_reads: self.rand_reads + other.rand_reads,
            seq_writes: self.seq_writes + other.seq_writes,
            rand_writes: self.rand_writes + other.rand_writes,
            cache_hits: self.cache_hits + other.cache_hits,
            pool_steals: self.pool_steals + other.pool_steals,
        }
    }

    /// Component-wise difference (`self - earlier`), for bracketing a phase.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            seq_writes: self.seq_writes - earlier.seq_writes,
            rand_writes: self.rand_writes - earlier.rand_writes,
            cache_hits: self.cache_hits - earlier.cache_hits,
            pool_steals: self.pool_steals - earlier.pool_steals,
        }
    }
}

struct File {
    pages: Vec<Page>,
    last_read: Option<u32>,
    last_write: Option<u32>,
    live: bool,
}

struct CacheEntry {
    page: Page,
    referenced: bool,
}

/// CLOCK (second-chance) page cache, write-through. Private per-pager
/// caches use it directly; the shared [`crate::pool::BufferPool`] runs
/// one per attached owner, resizing it as frames move between owners.
pub(crate) struct Cache {
    capacity: usize,
    map: HashMap<(FileId, u32), usize>,
    slots: Vec<Option<((FileId, u32), CacheEntry)>>,
    hand: usize,
}

impl Cache {
    pub(crate) fn new(capacity: usize) -> Self {
        Cache { capacity, map: HashMap::new(), slots: Vec::new(), hand: 0 }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied frames.
    fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether every frame of the current capacity is occupied (a
    /// further `put` of a non-resident page would evict).
    pub(crate) fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    pub(crate) fn contains(&self, key: (FileId, u32)) -> bool {
        self.map.contains_key(&key)
    }

    /// Resize the cache. Shrinking below the resident page count evicts
    /// in CLOCK order until the new capacity fits.
    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        while self.len() > capacity {
            self.evict_one();
        }
        self.capacity = capacity;
        self.compact();
    }

    /// Evict one page chosen by the CLOCK sweep, leaving a hole.
    fn evict_one(&mut self) {
        debug_assert!(self.len() > 0);
        // A trailing-pop compact can leave the hand past the shortened
        // slot vector; re-enter the ring before indexing (see `compact`).
        self.hand %= self.slots.len().max(1);
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.slots.len().max(1);
            match self.slots[slot].as_mut() {
                None => continue,
                Some(occupant) => {
                    if occupant.1.referenced {
                        occupant.1.referenced = false;
                    } else {
                        self.map.remove(&occupant.0);
                        self.slots[slot] = None;
                        return;
                    }
                }
            }
        }
    }

    pub(crate) fn get(&mut self, key: (FileId, u32)) -> Option<&Page> {
        let &slot = self.map.get(&key)?;
        let entry = self.slots[slot].as_mut().expect("mapped slot must be occupied");
        entry.1.referenced = true;
        Some(&entry.1.page)
    }

    pub(crate) fn put(&mut self, key: (FileId, u32), page: Page) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            let entry = self.slots[slot].as_mut().expect("mapped slot must be occupied");
            entry.1.page = page;
            entry.1.referenced = true;
            return;
        }
        if self.slots.len() < self.capacity {
            self.map.insert(key, self.slots.len());
            self.slots.push(Some((key, CacheEntry { page, referenced: true })));
            return;
        }
        // CLOCK sweep: clear reference bits until an unreferenced victim
        // is found. The sweep only runs with every slot occupied
        // (`slots.len() == capacity`), but the hand may be stale after a
        // trailing-pop compact followed by a capacity shrink (pool
        // rebalance / detach), so clamp it before indexing and advance
        // modulo the live slot count, never the nominal capacity.
        self.hand %= self.slots.len();
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let occupant = self.slots[slot].as_mut().expect("cache slots are all occupied");
            if occupant.1.referenced {
                occupant.1.referenced = false;
            } else {
                self.map.remove(&occupant.0);
                self.map.insert(key, slot);
                self.slots[slot] = Some((key, CacheEntry { page, referenced: true }));
                return;
            }
        }
    }

    pub(crate) fn evict_file(&mut self, fid: FileId) {
        for slot in self.slots.iter_mut() {
            if let Some((key, _)) = slot {
                if key.0 == fid {
                    self.map.remove(key);
                    *slot = None;
                }
            }
        }
        self.compact();
    }

    /// Remove holes left by eviction so `slots.len() < capacity`
    /// re-enables the cheap insertion path (rare: file free, resize).
    ///
    /// The trailing-pop path can leave `hand >= slots.len()`; it is NOT
    /// clamped here so that the sweep position is preserved when the
    /// vector grows back to its old length (the common, capacity-stable
    /// case). Both sweeps (`put`, `evict_one`) clamp the hand on entry,
    /// which is where a stale value could otherwise index out of bounds
    /// after a capacity shrink.
    fn compact(&mut self) {
        while matches!(self.slots.last(), Some(None)) {
            self.slots.pop();
        }
        if self.slots.iter().any(Option::is_none) {
            let kept: Vec<_> = self.slots.drain(..).flatten().collect();
            self.map.clear();
            for (i, (key, entry)) in kept.into_iter().enumerate() {
                self.map.insert(key, i);
                self.slots.push(Some((key, entry)));
            }
            self.hand = 0;
        }
    }
}

/// Where a pager's buffer cache lives: nowhere (every access charged),
/// in a private CLOCK cache, or in an owner region of a shared
/// [`crate::pool::BufferPool`].
enum CacheBackend {
    None,
    Private(Cache),
    Pooled(PoolHandle),
}

/// The simulated disk. All engine components share one pager via
/// [`SharedPager`].
pub struct Pager {
    files: Vec<File>,
    stats: IoStats,
    cache: CacheBackend,
    cost: CostModel,
    /// Fault injection: when set, the access countdown decrements on
    /// every disk read/write and the access that reaches zero fails.
    fail_after: Option<u64>,
}

/// Shared, `Send`-able handle to a [`Pager`].
///
/// The paper's algorithm is a single loop of sorts and merge-scans, but
/// the parallel sharded execution runs one shard per worker thread, each
/// shard on its own pager — so the handle is an `Arc<Mutex<..>>`. A
/// single-threaded run never contends on the lock; a parallel run gives
/// every shard its own pager, so the locks stay uncontended there too
/// (the mutex buys `Send`, not concurrency on one disk).
#[derive(Clone)]
pub struct SharedPager(Arc<Mutex<Pager>>);

impl SharedPager {
    /// Wrap a pager in a shared handle.
    pub fn new(pager: Pager) -> Self {
        SharedPager(Arc::new(Mutex::new(pager)))
    }

    /// Exclusive access to the pager. Never blocks in practice: each
    /// simulated disk is driven by one thread at a time.
    pub fn lock(&self) -> MutexGuard<'_, Pager> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Pager {
    /// A pager with the paper's cost model and no buffer cache (every page
    /// access is charged).
    pub fn new() -> Self {
        Pager {
            files: Vec::new(),
            stats: IoStats::default(),
            cache: CacheBackend::None,
            cost: CostModel::paper(),
            fail_after: None,
        }
    }

    /// Fault injection for tests: the `n`-th subsequent disk access (1 =
    /// the very next one) fails with [`Error::Corrupt`], simulating a
    /// media error. Pass `None` to disarm.
    pub fn fail_after(&mut self, n: Option<u64>) {
        self.fail_after = n;
    }

    fn tick_fault(&mut self) -> Result<()> {
        if let Some(n) = self.fail_after.as_mut() {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.fail_after = None;
                return Err(Error::Corrupt("injected I/O fault".into()));
            }
        }
        Ok(())
    }

    /// Wrap a new pager in a shared handle.
    pub fn shared() -> SharedPager {
        SharedPager::new(Pager::new())
    }

    /// Install a private buffer cache of `frames` pages.
    ///
    /// `frames == 0` means **no cache at all** — every page access
    /// reaches the simulated disk and is charged, which is the
    /// worst-case accounting the paper's Section 3.2 / 4.3 formulas
    /// assume. (Pinned by the `zero_frames_means_no_cache` test; any
    /// previously installed cache or pool attachment is dropped.)
    pub fn set_cache_frames(&mut self, frames: usize) {
        self.cache =
            if frames == 0 { CacheBackend::None } else { CacheBackend::Private(Cache::new(frames)) };
    }

    /// Attach this pager to a shared [`crate::pool::BufferPool`] region,
    /// replacing any private cache. The handle's frames return to the
    /// pool when the pager (or a later `set_cache_frames`) drops it.
    pub fn attach_pool(&mut self, handle: PoolHandle) {
        self.cache = CacheBackend::Pooled(handle);
    }

    /// The effective buffer-cache frame count of this pager right now: 0
    /// when uncached, the private cache's capacity, or the pool owner
    /// region's current allocation (quota plus stolen frames).
    pub fn cache_frames(&self) -> usize {
        match &self.cache {
            CacheBackend::None => 0,
            CacheBackend::Private(cache) => cache.capacity(),
            CacheBackend::Pooled(handle) => handle.frames(),
        }
    }

    /// Replace the cost model used by [`IoStats::estimated_ms`] reporting.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Create a new empty file.
    pub fn create_file(&mut self) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(File { pages: Vec::new(), last_read: None, last_write: None, live: true });
        id
    }

    /// Release a file (temporary sort runs, discarded `R'_k` relations).
    /// Its pages stop counting toward [`Pager::total_pages`].
    pub fn free_file(&mut self, fid: FileId) -> Result<()> {
        let file = self.file_mut(fid)?;
        file.pages.clear();
        file.pages.shrink_to_fit();
        file.live = false;
        match &mut self.cache {
            CacheBackend::None => {}
            CacheBackend::Private(cache) => cache.evict_file(fid),
            CacheBackend::Pooled(handle) => handle.evict_file(fid),
        }
        Ok(())
    }

    fn file(&self, fid: FileId) -> Result<&File> {
        self.files.get(fid.0 as usize).filter(|f| f.live).ok_or(Error::NoSuchFile(fid.0))
    }

    fn file_mut(&mut self, fid: FileId) -> Result<&mut File> {
        self.files.get_mut(fid.0 as usize).filter(|f| f.live).ok_or(Error::NoSuchFile(fid.0))
    }

    /// Number of pages in a file.
    pub fn n_pages(&self, fid: FileId) -> Result<u32> {
        Ok(self.file(fid)?.pages.len() as u32)
    }

    /// Total pages across all live files (disk footprint).
    pub fn total_pages(&self) -> u64 {
        self.files.iter().filter(|f| f.live).map(|f| f.pages.len() as u64).sum()
    }

    /// Look up a page in whichever cache backend is installed.
    fn cache_get(&mut self, fid: FileId, pno: u32) -> Option<Page> {
        match &mut self.cache {
            CacheBackend::None => None,
            CacheBackend::Private(cache) => cache.get((fid, pno)).cloned(),
            CacheBackend::Pooled(handle) => handle.get(fid, pno),
        }
    }

    /// Admit a page into the cache backend, recording pool steals.
    fn cache_put(&mut self, fid: FileId, pno: u32, page: Page) {
        match &mut self.cache {
            CacheBackend::None => {}
            CacheBackend::Private(cache) => cache.put((fid, pno), page),
            CacheBackend::Pooled(handle) => {
                self.stats.pool_steals += handle.put(fid, pno, page);
            }
        }
    }

    /// Read a page, charging sequential or random I/O (or a cache hit).
    pub fn read_page(&mut self, fid: FileId, pno: u32) -> Result<Page> {
        if let Some(page) = self.cache_get(fid, pno) {
            self.stats.cache_hits += 1;
            // A cache hit still advances the head position: a subsequent
            // miss on the next page is physically sequential.
            self.file_mut(fid)?.last_read = Some(pno);
            return Ok(page);
        }
        self.tick_fault()?;
        let file = self.file_mut(fid)?;
        let len = file.pages.len() as u32;
        let page = file
            .pages
            .get(pno as usize)
            .cloned()
            .ok_or(Error::PageOutOfBounds { file: fid.0, page: pno, len })?;
        let sequential = match file.last_read {
            Some(prev) => pno == prev + 1,
            None => pno == 0,
        };
        file.last_read = Some(pno);
        if sequential {
            self.stats.seq_reads += 1;
        } else {
            self.stats.rand_reads += 1;
        }
        self.cache_put(fid, pno, page.clone());
        Ok(page)
    }

    /// Append a page to a file, charging a write. Returns the new page number.
    pub fn append_page(&mut self, fid: FileId, page: Page) -> Result<u32> {
        self.tick_fault()?;
        let file = self.file_mut(fid)?;
        let pno = file.pages.len() as u32;
        let sequential = match file.last_write {
            Some(prev) => pno == prev + 1,
            None => pno == 0,
        };
        file.last_write = Some(pno);
        file.pages.push(page);
        if sequential {
            self.stats.seq_writes += 1;
        } else {
            self.stats.rand_writes += 1;
        }
        // Appends go through the cache too (write-through).
        let page = self.files[fid.0 as usize].pages[pno as usize].clone();
        self.cache_put(fid, pno, page);
        Ok(pno)
    }

    /// Overwrite an existing page, charging a write.
    pub fn write_page(&mut self, fid: FileId, pno: u32, page: Page) -> Result<()> {
        self.tick_fault()?;
        let file = self.file_mut(fid)?;
        let len = file.pages.len() as u32;
        let slot = file
            .pages
            .get_mut(pno as usize)
            .ok_or(Error::PageOutOfBounds { file: fid.0, page: pno, len })?;
        *slot = page.clone();
        let sequential = match file.last_write {
            Some(prev) => pno == prev + 1,
            None => pno == 0,
        };
        file.last_write = Some(pno);
        if sequential {
            self.stats.seq_writes += 1;
        } else {
            self.stats.rand_writes += 1;
        }
        self.cache_put(fid, pno, page);
        Ok(())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zero the statistics (e.g. after loading, before the measured phase).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Estimated elapsed time of all accesses so far under the cost model.
    pub fn estimated_ms(&self) -> f64 {
        self.stats.estimated_ms(&self.cost)
    }
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(v: u32) -> Page {
        let mut p = Page::new();
        p.push_record(&[v]).unwrap();
        p
    }

    #[test]
    fn sequential_scan_is_classified_sequential() {
        let mut pager = Pager::new();
        let f = pager.create_file();
        for i in 0..5 {
            pager.append_page(f, page_with(i)).unwrap();
        }
        pager.reset_stats();
        for i in 0..5 {
            pager.read_page(f, i).unwrap();
        }
        let s = pager.stats();
        assert_eq!(s.seq_reads, 5);
        assert_eq!(s.rand_reads, 0);
    }

    #[test]
    fn backward_and_repeated_reads_are_random() {
        let mut pager = Pager::new();
        let f = pager.create_file();
        for i in 0..3 {
            pager.append_page(f, page_with(i)).unwrap();
        }
        pager.reset_stats();
        pager.read_page(f, 2).unwrap(); // jump: random
        pager.read_page(f, 2).unwrap(); // repeat: random
        pager.read_page(f, 0).unwrap(); // backward: random
        pager.read_page(f, 1).unwrap(); // forward from 0: sequential
        let s = pager.stats();
        assert_eq!(s.rand_reads, 3);
        assert_eq!(s.seq_reads, 1);
    }

    #[test]
    fn interleaved_scans_of_two_files_stay_sequential() {
        // Merge-scan join alternates between its two inputs; per-file
        // tracking must keep both streams sequential.
        let mut pager = Pager::new();
        let a = pager.create_file();
        let b = pager.create_file();
        for i in 0..4 {
            pager.append_page(a, page_with(i)).unwrap();
            pager.append_page(b, page_with(100 + i)).unwrap();
        }
        pager.reset_stats();
        for i in 0..4 {
            pager.read_page(a, i).unwrap();
            pager.read_page(b, i).unwrap();
        }
        assert_eq!(pager.stats().seq_reads, 8);
        assert_eq!(pager.stats().rand_reads, 0);
    }

    #[test]
    fn appends_count_as_sequential_writes() {
        let mut pager = Pager::new();
        let f = pager.create_file();
        for i in 0..10 {
            pager.append_page(f, page_with(i)).unwrap();
        }
        assert_eq!(pager.stats().seq_writes, 10);
        assert_eq!(pager.stats().rand_writes, 0);
    }

    #[test]
    fn estimated_ms_uses_paper_constants() {
        let model = CostModel::paper();
        let stats = IoStats {
            seq_reads: 3,
            rand_reads: 2,
            seq_writes: 1,
            rand_writes: 0,
            cache_hits: 9,
            pool_steals: 0,
        };
        // 4 sequential * 10ms + 2 random * 20ms = 80ms; hits are free.
        assert_eq!(stats.estimated_ms(&model), 80.0);
    }

    #[test]
    fn cache_absorbs_repeated_reads() {
        let mut pager = Pager::new();
        pager.set_cache_frames(2);
        let f = pager.create_file();
        // Write-through: the appended page is already resident, so every
        // subsequent read is a hit and no read reaches the disk.
        pager.append_page(f, page_with(7)).unwrap();
        pager.reset_stats();
        pager.read_page(f, 0).unwrap();
        pager.read_page(f, 0).unwrap();
        pager.read_page(f, 0).unwrap();
        let s = pager.stats();
        assert_eq!(s.reads(), 0, "appended page is cache-resident");
        assert_eq!(s.cache_hits, 3);
    }

    #[test]
    fn clock_cache_evicts_when_full() {
        let mut pager = Pager::new();
        pager.set_cache_frames(2);
        let f = pager.create_file();
        for i in 0..3 {
            pager.append_page(f, page_with(i)).unwrap();
        }
        pager.reset_stats();
        pager.read_page(f, 0).unwrap(); // miss
        pager.read_page(f, 1).unwrap(); // miss
        pager.read_page(f, 2).unwrap(); // miss, evicts one of {0,1}
        pager.read_page(f, 2).unwrap(); // hit
        let s = pager.stats();
        assert_eq!(s.reads(), 3);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn stale_hand_survives_trailing_evict_then_shrink() {
        // Regression: `evict_file` that only pops trailing slots used to
        // leave the CLOCK hand pointing past the shortened slot vector;
        // a subsequent capacity shrink (pool rebalance or detach) then
        // made the next sweep index out of bounds and panic.
        let mut cache = Cache::new(4);
        let keep = FileId(0);
        let gone = FileId(1);
        // Fill: [k0, k1, g0, g1], all referenced, hand = 0.
        cache.put((keep, 0), page_with(0));
        cache.put((keep, 1), page_with(1));
        cache.put((gone, 0), page_with(2));
        cache.put((gone, 1), page_with(3));
        // Three sweeps advance the hand to 3 and leave (gone, 1) as the
        // sole trailing occupant of the evictable file.
        cache.put((keep, 2), page_with(4)); // full pass + evict slot 0, hand = 1
        cache.put((keep, 3), page_with(5)); // evict slot 1, hand = 2
        cache.put((keep, 4), page_with(6)); // evict slot 2, hand = 3
        // Trailing pop only: slots.len() drops to 3, hand stays at 3.
        cache.evict_file(gone);
        assert_eq!(cache.len(), 3);
        // Shrink at-or-below the stale hand, then force a sweep.
        cache.set_capacity(3);
        cache.put((keep, 5), page_with(7)); // used to panic: slots[3] of len 3
        assert!(cache.contains((keep, 5)));
        assert_eq!(cache.len(), 3, "capacity still honored after the shrink");
        // And the shrink-eviction path (`evict_one`) with the same stale
        // hand: rebuild the state, then shrink below the resident count.
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        cache.put((keep, 6), page_with(8));
        assert!(cache.contains((keep, 6)));
    }

    #[test]
    fn zero_frames_means_no_cache() {
        // `set_cache_frames(0)` disables caching entirely: every read is
        // charged as disk I/O and no hit is ever recorded — including
        // after shrinking away a previously installed cache.
        let mut pager = Pager::new();
        pager.set_cache_frames(4);
        let f = pager.create_file();
        pager.append_page(f, page_with(1)).unwrap();
        pager.set_cache_frames(0);
        assert_eq!(pager.cache_frames(), 0);
        pager.reset_stats();
        pager.read_page(f, 0).unwrap();
        pager.read_page(f, 0).unwrap();
        let s = pager.stats();
        assert_eq!(s.reads(), 2, "uncached reads all reach the disk");
        assert_eq!(s.cache_hits, 0);
    }

    #[test]
    fn cache_frames_reports_the_effective_backend_size() {
        let mut pager = Pager::new();
        assert_eq!(pager.cache_frames(), 0);
        pager.set_cache_frames(8);
        assert_eq!(pager.cache_frames(), 8);
        let pool = crate::pool::BufferPool::new(12);
        let mut handles = pool.attach_weighted(&[1]);
        pager.attach_pool(handles.remove(0));
        assert_eq!(pager.cache_frames(), 12);
    }

    #[test]
    fn freed_files_reject_access_and_drop_footprint() {
        let mut pager = Pager::new();
        let f = pager.create_file();
        pager.append_page(f, page_with(1)).unwrap();
        assert_eq!(pager.total_pages(), 1);
        pager.free_file(f).unwrap();
        assert_eq!(pager.total_pages(), 0);
        assert!(pager.read_page(f, 0).is_err());
        assert!(matches!(pager.n_pages(f), Err(Error::NoSuchFile(_))));
    }

    #[test]
    fn stats_plus_aggregates_shards() {
        let a = IoStats {
            seq_reads: 1,
            rand_reads: 2,
            seq_writes: 3,
            rand_writes: 4,
            cache_hits: 5,
            pool_steals: 6,
        };
        let b = IoStats {
            seq_reads: 10,
            rand_reads: 20,
            seq_writes: 30,
            rand_writes: 40,
            cache_hits: 50,
            pool_steals: 60,
        };
        let s = a.plus(&b);
        assert_eq!(s.reads(), 33);
        assert_eq!(s.writes(), 77);
        assert_eq!(s.cache_hits, 55);
        assert_eq!(s.pool_steals, 66);
    }

    #[test]
    fn stats_since_brackets_a_phase() {
        let mut pager = Pager::new();
        let f = pager.create_file();
        pager.append_page(f, page_with(1)).unwrap();
        let before = pager.stats();
        pager.read_page(f, 0).unwrap();
        let delta = pager.stats().since(&before);
        assert_eq!(delta.reads(), 1);
        assert_eq!(delta.writes(), 0);
    }

    #[test]
    fn out_of_bounds_read_is_an_error() {
        let mut pager = Pager::new();
        let f = pager.create_file();
        assert!(matches!(pager.read_page(f, 0), Err(Error::PageOutOfBounds { .. })));
    }
}
