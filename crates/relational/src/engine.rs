//! The `Database`: a catalog of named tables and indexes over one pager.
//!
//! This is the integration surface used by the SQL layer (`setm-sql`) and
//! by the engine-backed SETM execution. Tables remember their sort order
//! (`sorted_by`), implementing the Section 4.1 remark that the final
//! `ORDER BY` "enables an efficient execution plan if the sort order of
//! the relations is tracked across iterations" — the ablation experiment
//! E8 toggles exactly this metadata.

use crate::btree::BTree;
use crate::errors::{Error, Result};
use crate::heap::HeapFile;
use crate::pager::{IoStats, Pager, SharedPager};
use crate::schema::Schema;
use crate::sort::{external_sort, SortOptions};
use std::collections::HashMap;

/// A named relation: schema + heap file + known sort order.
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub file: HeapFile,
    /// Column positions the file is known to be sorted on (key prefix),
    /// if any. Maintained by the operations that produce sorted output.
    pub sorted_by: Option<Vec<usize>>,
}

/// A named B+-tree index over a table's columns.
pub struct Index {
    pub name: String,
    pub table: String,
    /// Column positions of the table forming the index key, in key order.
    pub key_cols: Vec<usize>,
    pub btree: BTree,
}

/// A single-user, single-threaded relational database over a simulated
/// paged disk.
pub struct Database {
    pager: SharedPager,
    tables: HashMap<String, Table>,
    indexes: HashMap<String, Index>,
}

impl Database {
    /// A database on a fresh pager with the paper's cost model.
    pub fn new() -> Self {
        Self::with_pager(Pager::shared())
    }

    /// A database over an existing pager (to share I/O accounting).
    pub fn with_pager(pager: SharedPager) -> Self {
        Database { pager, tables: HashMap::new(), indexes: HashMap::new() }
    }

    /// The shared pager.
    pub fn pager(&self) -> &SharedPager {
        &self.pager
    }

    /// Create a table and load `rows` into it.
    pub fn create_table_from_rows<'a, I: IntoIterator<Item = &'a [u32]>>(
        &mut self,
        name: &str,
        schema: Schema,
        rows: I,
    ) -> Result<&Table> {
        if self.tables.contains_key(name) {
            return Err(Error::TableExists(name.to_string()));
        }
        let file = HeapFile::from_rows(self.pager.clone(), schema.arity(), rows)?;
        self.register(name, schema, file, None)
    }

    /// Create an empty table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<&Table> {
        self.create_table_from_rows(name, schema, std::iter::empty())
    }

    /// Register an existing heap file as a table.
    pub fn register(
        &mut self,
        name: &str,
        schema: Schema,
        file: HeapFile,
        sorted_by: Option<Vec<usize>>,
    ) -> Result<&Table> {
        if schema.arity() != file.arity() {
            return Err(Error::ArityMismatch { expected: schema.arity(), got: file.arity() });
        }
        let table = Table { name: name.to_string(), schema, file, sorted_by };
        self.tables.insert(name.to_string(), table);
        Ok(&self.tables[name])
    }

    /// Replace the contents of `name` (used by `INSERT INTO ... SELECT`
    /// loops that rebuild `R_k` each iteration).
    pub fn replace_table(
        &mut self,
        name: &str,
        schema: Schema,
        file: HeapFile,
        sorted_by: Option<Vec<usize>>,
    ) -> Result<()> {
        if let Some(old) = self.tables.remove(name) {
            old.file.free()?;
        }
        // Also drop indexes that referenced the old contents.
        let stale: Vec<String> = self
            .indexes
            .values()
            .filter(|i| i.table == name)
            .map(|i| i.name.clone())
            .collect();
        for idx in stale {
            self.indexes.remove(&idx);
        }
        self.register(name, schema, file, sorted_by)?;
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Drop a table, freeing its pages.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let table = self.tables.remove(name).ok_or_else(|| Error::NoSuchTable(name.to_string()))?;
        table.file.free()?;
        let stale: Vec<String> = self
            .indexes
            .values()
            .filter(|i| i.table == name)
            .map(|i| i.name.clone())
            .collect();
        for idx in stale {
            self.indexes.remove(&idx);
        }
        Ok(())
    }

    /// Names of all tables (sorted, for stable output).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Build a B+-tree index named `index_name` on `table_name(columns)`.
    /// The index key is the listed columns in order; internal nodes are
    /// pinned in memory per the paper's Section 3.2 assumption.
    pub fn create_index(
        &mut self,
        index_name: &str,
        table_name: &str,
        columns: &[&str],
    ) -> Result<&Index> {
        let table = self.table(table_name)?;
        let key_cols: Vec<usize> = columns
            .iter()
            .map(|c| table.schema.column_index(c))
            .collect::<Result<_>>()?;
        // Project the key columns, sort, bulk load, discard the temp.
        let projected = crate::agg::filter_project(&table.file, &key_cols, |_| true)?;
        let all_cols: Vec<usize> = (0..key_cols.len()).collect();
        let sorted = external_sort(&projected, &all_cols, SortOptions::default())?;
        projected.free()?;
        let mut btree = BTree::from_sorted_heapfile(&sorted)?;
        sorted.free()?;
        btree.cache_internal_nodes()?;
        let index = Index {
            name: index_name.to_string(),
            table: table_name.to_string(),
            key_cols,
            btree,
        };
        self.indexes.insert(index_name.to_string(), index);
        Ok(&self.indexes[index_name])
    }

    /// Look up an index by name.
    pub fn index(&self, name: &str) -> Result<&Index> {
        self.indexes.get(name).ok_or_else(|| Error::NoSuchIndex(name.to_string()))
    }

    /// Find an index on `table` whose key starts with the given columns.
    pub fn find_index_on(&self, table: &str, key_prefix: &[usize]) -> Option<&Index> {
        self.indexes.values().find(|i| {
            i.table == table
                && i.key_cols.len() >= key_prefix.len()
                && i.key_cols[..key_prefix.len()] == *key_prefix
        })
    }

    /// Current I/O statistics of the shared pager.
    pub fn io_stats(&self) -> IoStats {
        self.pager.lock().stats()
    }

    /// Reset I/O statistics.
    pub fn reset_io_stats(&self) {
        self.pager.lock().reset_stats();
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales_rows() -> Vec<Vec<u32>> {
        vec![vec![10, 1], vec![10, 2], vec![20, 1], vec![20, 3], vec![30, 2]]
    }

    #[test]
    fn create_and_scan_table() {
        let mut db = Database::new();
        let rows = sales_rows();
        db.create_table_from_rows(
            "SALES",
            Schema::sales(),
            rows.iter().map(|r| r.as_slice()),
        )
        .unwrap();
        let t = db.table("SALES").unwrap();
        assert_eq!(t.file.n_records(), 5);
        assert_eq!(t.file.rows().unwrap(), rows);
        assert!(db.has_table("SALES"));
        assert!(!db.has_table("sales"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = Database::new();
        db.create_table("T", Schema::new(["a"])).unwrap();
        assert!(matches!(
            db.create_table("T", Schema::new(["a"])),
            Err(Error::TableExists(_))
        ));
    }

    #[test]
    fn drop_frees_pages() {
        let mut db = Database::new();
        let rows = sales_rows();
        db.create_table_from_rows("SALES", Schema::sales(), rows.iter().map(|r| r.as_slice()))
            .unwrap();
        assert!(db.pager().lock().total_pages() > 0);
        db.drop_table("SALES").unwrap();
        assert_eq!(db.pager().lock().total_pages(), 0);
        assert!(matches!(db.table("SALES"), Err(Error::NoSuchTable(_))));
    }

    #[test]
    fn index_probe_finds_matches() {
        let mut db = Database::new();
        let rows = sales_rows();
        db.create_table_from_rows("SALES", Schema::sales(), rows.iter().map(|r| r.as_slice()))
            .unwrap();
        // The paper's index on (item, trans_id).
        db.create_index("SALES_item_tid", "SALES", &["item", "trans_id"]).unwrap();
        let idx = db.index("SALES_item_tid").unwrap();
        let mut tids = Vec::new();
        idx.btree.scan_prefix(&[1], |k| tids.push(k[1])).unwrap();
        assert_eq!(tids, vec![10, 20]);
        assert_eq!(idx.btree.count_prefix(&[2]).unwrap(), 2);
        assert_eq!(idx.btree.count_prefix(&[9]).unwrap(), 0);
    }

    #[test]
    fn find_index_on_matches_key_prefix() {
        let mut db = Database::new();
        let rows = sales_rows();
        db.create_table_from_rows("SALES", Schema::sales(), rows.iter().map(|r| r.as_slice()))
            .unwrap();
        db.create_index("idx", "SALES", &["item", "trans_id"]).unwrap();
        assert!(db.find_index_on("SALES", &[1]).is_some());
        assert!(db.find_index_on("SALES", &[1, 0]).is_some());
        assert!(db.find_index_on("SALES", &[0]).is_none());
        assert!(db.find_index_on("OTHER", &[1]).is_none());
    }

    #[test]
    fn replace_table_swaps_contents_and_invalidates_indexes() {
        let mut db = Database::new();
        let rows = sales_rows();
        db.create_table_from_rows("R", Schema::sales(), rows.iter().map(|r| r.as_slice()))
            .unwrap();
        db.create_index("R_idx", "R", &["item"]).unwrap();
        let new_rows = vec![vec![99u32, 9u32]];
        let file = HeapFile::from_rows(
            db.pager().clone(),
            2,
            new_rows.iter().map(|r| r.as_slice()),
        )
        .unwrap();
        db.replace_table("R", Schema::sales(), file, Some(vec![0, 1])).unwrap();
        assert_eq!(db.table("R").unwrap().file.rows().unwrap(), new_rows);
        assert_eq!(db.table("R").unwrap().sorted_by, Some(vec![0, 1]));
        assert!(db.index("R_idx").is_err(), "stale index must be dropped");
    }
}
