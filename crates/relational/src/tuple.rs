//! Row comparison helpers.
//!
//! Rows are plain `&[u32]` slices; relations decide which column positions
//! form the ordering key. These helpers implement the composite-key
//! comparisons used by sorting, merge-scan joins, and group-by.

use std::cmp::Ordering;

/// Compare two rows on the given key column positions, in order.
pub fn cmp_on(a: &[u32], b: &[u32], key: &[usize]) -> Ordering {
    for &k in key {
        match a[k].cmp(&b[k]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Compare two rows lexicographically on all columns.
pub fn cmp_all(a: &[u32], b: &[u32]) -> Ordering {
    a.cmp(b)
}

/// Whether two rows agree on the given key column positions.
pub fn eq_on(a: &[u32], b: &[u32], key: &[usize]) -> bool {
    key.iter().all(|&k| a[k] == b[k])
}

/// Whether `rows` is sorted (non-decreasing) on the given key columns.
pub fn is_sorted_on<'a, I: IntoIterator<Item = &'a [u32]>>(rows: I, key: &[usize]) -> bool {
    let mut prev: Option<&[u32]> = None;
    for row in rows {
        if let Some(p) = prev {
            if cmp_on(p, row, key) == Ordering::Greater {
                return false;
            }
        }
        prev = Some(row);
    }
    true
}

/// Project `row` onto `cols`, appending the values to `out`.
pub fn project_into(row: &[u32], cols: &[usize], out: &mut Vec<u32>) {
    out.extend(cols.iter().map(|&c| row[c]));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_key_comparison_orders_by_key_positions() {
        let a = [1u32, 5, 9];
        let b = [1u32, 7, 0];
        assert_eq!(cmp_on(&a, &b, &[0]), Ordering::Equal);
        assert_eq!(cmp_on(&a, &b, &[0, 1]), Ordering::Less);
        assert_eq!(cmp_on(&a, &b, &[2]), Ordering::Greater);
        // Key order matters, not column order.
        assert_eq!(cmp_on(&a, &b, &[2, 1]), Ordering::Greater);
    }

    #[test]
    fn eq_on_checks_only_key_columns() {
        let a = [3u32, 4, 5];
        let b = [3u32, 4, 6];
        assert!(eq_on(&a, &b, &[0, 1]));
        assert!(!eq_on(&a, &b, &[0, 2]));
    }

    #[test]
    fn is_sorted_detects_order_violations() {
        let rows: Vec<Vec<u32>> = vec![vec![1, 2], vec![1, 3], vec![2, 0]];
        assert!(is_sorted_on(rows.iter().map(|r| r.as_slice()), &[0, 1]));
        assert!(!is_sorted_on(rows.iter().map(|r| r.as_slice()), &[1]));
        let empty: Vec<&[u32]> = vec![];
        assert!(is_sorted_on(empty, &[0]));
    }

    #[test]
    fn projection_appends_selected_columns() {
        let mut out = vec![];
        project_into(&[10, 20, 30], &[2, 0], &mut out);
        assert_eq!(out, vec![30, 10]);
    }
}
