//! Heap files: append-only sequences of fixed-length records.
//!
//! Every relation the engine materializes — `SALES`, the `R_k` and `R'_k`
//! relations of Algorithm SETM, sort runs — is a heap file. Records are
//! `arity` consecutive `u32` values; pages are filled densely in append
//! order, so a full scan is a purely sequential read (the access pattern
//! whose cost Section 4.3 prices at 10 ms/page).

use crate::errors::{Error, Result};
use crate::page::Page;
use crate::pager::{FileId, SharedPager};

/// A read-only handle to a fully-written heap file.
#[derive(Clone)]
pub struct HeapFile {
    pager: SharedPager,
    fid: FileId,
    arity: usize,
    n_records: u64,
    n_pages: u32,
}

/// Incrementally builds a heap file; call [`HeapFileBuilder::finish`] to
/// flush the final partial page and obtain the read handle.
pub struct HeapFileBuilder {
    pager: SharedPager,
    fid: FileId,
    arity: usize,
    tail: Page,
    n_records: u64,
    n_pages: u32,
}

impl HeapFileBuilder {
    /// Start a new heap file with `arity` columns per record.
    pub fn new(pager: SharedPager, arity: usize) -> Self {
        assert!(arity > 0, "records must have at least one column");
        let fid = pager.lock().create_file();
        HeapFileBuilder { pager, fid, arity, tail: Page::new(), n_records: 0, n_pages: 0 }
    }

    /// Append one record.
    pub fn push(&mut self, row: &[u32]) -> Result<()> {
        if row.len() != self.arity {
            return Err(Error::ArityMismatch { expected: self.arity, got: row.len() });
        }
        if !self.tail.push_record(row)? {
            let full = std::mem::take(&mut self.tail);
            self.pager.lock().append_page(self.fid, full)?;
            self.n_pages += 1;
            let fit = self.tail.push_record(row)?;
            debug_assert!(fit, "empty page must accept one record");
        }
        self.n_records += 1;
        Ok(())
    }

    /// Append every record from an iterator of rows.
    pub fn extend<'a, I: IntoIterator<Item = &'a [u32]>>(&mut self, rows: I) -> Result<()> {
        for row in rows {
            self.push(row)?;
        }
        Ok(())
    }

    /// Records appended so far.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Flush the tail page and return the read-only handle.
    pub fn finish(mut self) -> Result<HeapFile> {
        if self.tail.record_count() > 0 {
            let tail = std::mem::take(&mut self.tail);
            self.pager.lock().append_page(self.fid, tail)?;
            self.n_pages += 1;
        }
        Ok(HeapFile {
            pager: self.pager,
            fid: self.fid,
            arity: self.arity,
            n_records: self.n_records,
            n_pages: self.n_pages,
        })
    }
}

impl HeapFile {
    /// Build a heap file from an iterator of rows in one call.
    pub fn from_rows<'a, I: IntoIterator<Item = &'a [u32]>>(
        pager: SharedPager,
        arity: usize,
        rows: I,
    ) -> Result<HeapFile> {
        let mut b = HeapFileBuilder::new(pager, arity);
        b.extend(rows)?;
        b.finish()
    }

    /// An empty heap file of the given arity.
    pub fn empty(pager: SharedPager, arity: usize) -> Result<HeapFile> {
        HeapFileBuilder::new(pager, arity).finish()
    }

    /// Columns per record.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total records.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Pages occupied — the `||R||` of the paper's cost formulas.
    pub fn n_pages(&self) -> u32 {
        self.n_pages
    }

    /// Size in bytes as `tuples × record_bytes` — the unit plotted by the
    /// paper's Figure 5 (which reports relation sizes in Kbytes).
    pub fn data_bytes(&self) -> u64 {
        self.n_records * (self.arity * crate::schema::VALUE_BYTES) as u64
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.fid
    }

    /// The shared pager this file lives on.
    pub fn pager(&self) -> &SharedPager {
        &self.pager
    }

    /// Free the underlying pages (e.g. `R'_k` after filtering, per the
    /// paper's loop which discards each intermediate once consumed).
    pub fn free(self) -> Result<()> {
        self.pager.lock().free_file(self.fid)
    }

    /// Visit every record in storage order. This is the hot path: one page
    /// read per page, records decoded into a reused buffer.
    pub fn for_each_row<F: FnMut(&[u32])>(&self, mut f: F) -> Result<()> {
        let mut row = vec![0u32; self.arity];
        for pno in 0..self.n_pages {
            let page = self.pager.lock().read_page(self.fid, pno)?;
            let n = page.record_count();
            for idx in 0..n {
                page.read_record(idx, self.arity, &mut row);
                f(&row);
            }
        }
        Ok(())
    }

    /// Materialize the whole file as a flat row-major vector
    /// (`n_records × arity` values).
    pub fn read_all(&self) -> Result<Vec<u32>> {
        let mut out = Vec::with_capacity(self.n_records as usize * self.arity);
        for pno in 0..self.n_pages {
            let page = self.pager.lock().read_page(self.fid, pno)?;
            page.read_all(self.arity, &mut out);
        }
        Ok(out)
    }

    /// Materialize as a vector of row vectors (test/debug convenience).
    pub fn rows(&self) -> Result<Vec<Vec<u32>>> {
        let mut out = Vec::with_capacity(self.n_records as usize);
        self.for_each_row(|r| out.push(r.to_vec()))?;
        Ok(out)
    }

    /// A streaming cursor over the file (used by merge joins, which must
    /// interleave two scans).
    pub fn cursor(&self) -> HeapCursor<'_> {
        HeapCursor {
            file: self,
            next_pno: 0,
            page: None,
            idx: 0,
            row: vec![0u32; self.arity],
            done: self.n_pages == 0,
        }
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HeapFile(file={}, arity={}, records={}, pages={})",
            self.fid.0, self.arity, self.n_records, self.n_pages
        )
    }
}

/// Streaming cursor: holds the current page and decodes one row at a time.
pub struct HeapCursor<'a> {
    file: &'a HeapFile,
    next_pno: u32,
    page: Option<Page>,
    idx: usize,
    row: Vec<u32>,
    done: bool,
}

impl HeapCursor<'_> {
    /// Advance to the next record; returns the decoded row, or `None` at
    /// end of file. The returned slice is valid until the next call.
    pub fn next_row(&mut self) -> Result<Option<&[u32]>> {
        if self.done {
            return Ok(None);
        }
        loop {
            if self.page.is_none() {
                if self.next_pno >= self.file.n_pages {
                    self.done = true;
                    return Ok(None);
                }
                let page =
                    self.file.pager.lock().read_page(self.file.fid, self.next_pno)?;
                self.next_pno += 1;
                self.idx = 0;
                self.page = Some(page);
            }
            let page = self.page.as_ref().expect("page was just loaded");
            if self.idx < page.record_count() {
                page.read_record(self.idx, self.file.arity, &mut self.row);
                self.idx += 1;
                return Ok(Some(&self.row));
            }
            self.page = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    #[test]
    fn round_trip_small() {
        let pager = Pager::shared();
        let rows: Vec<Vec<u32>> = vec![vec![1, 10], vec![2, 20], vec![3, 30]];
        let f =
            HeapFile::from_rows(pager, 2, rows.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(f.n_records(), 3);
        assert_eq!(f.n_pages(), 1);
        assert_eq!(f.rows().unwrap(), rows);
    }

    #[test]
    fn spans_multiple_pages_and_preserves_order() {
        let pager = Pager::shared();
        let n = 2000u32; // 511 two-column records per page -> 4 pages
        let rows: Vec<Vec<u32>> = (0..n).map(|i| vec![i, i * 7]).collect();
        let f = HeapFile::from_rows(pager.clone(), 2, rows.iter().map(|r| r.as_slice()))
            .unwrap();
        assert_eq!(f.n_pages(), 4);
        assert_eq!(f.n_records(), n as u64);
        let back = f.rows().unwrap();
        assert_eq!(back, rows);
        // Scan I/O: one read per page; at most the initial rewind (the
        // head sits at the end of the previous scan) counts as random.
        pager.lock().reset_stats();
        f.for_each_row(|_| {}).unwrap();
        let s = pager.lock().stats();
        assert_eq!(s.reads(), 4);
        assert!(s.rand_reads <= 1, "only the rewind may be random: {s:?}");
    }

    #[test]
    fn page_count_matches_paper_formula() {
        // Section 4.3: ||R_i|| pages for |R_i| tuples of (i+1)*4 bytes.
        let pager = Pager::shared();
        let rows: Vec<Vec<u32>> = (0..1023).map(|i| vec![i, 0]).collect();
        let f = HeapFile::from_rows(pager, 2, rows.iter().map(|r| r.as_slice())).unwrap();
        // 511 per page -> ceil(1023/511) = 3 pages.
        assert_eq!(f.n_pages(), 3);
        assert_eq!(f.data_bytes(), 1023 * 8);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let pager = Pager::shared();
        let mut b = HeapFileBuilder::new(pager, 2);
        assert!(matches!(
            b.push(&[1, 2, 3]),
            Err(Error::ArityMismatch { expected: 2, got: 3 })
        ));
    }

    #[test]
    fn empty_file_scans_cleanly() {
        let pager = Pager::shared();
        let f = HeapFile::empty(pager, 3).unwrap();
        assert_eq!(f.n_records(), 0);
        assert_eq!(f.n_pages(), 0);
        assert!(f.rows().unwrap().is_empty());
        let mut cur = f.cursor();
        assert!(cur.next_row().unwrap().is_none());
    }

    #[test]
    fn cursor_yields_all_rows_in_order() {
        let pager = Pager::shared();
        let rows: Vec<Vec<u32>> = (0..600).map(|i| vec![i]).collect();
        let f = HeapFile::from_rows(pager, 1, rows.iter().map(|r| r.as_slice())).unwrap();
        let mut cur = f.cursor();
        let mut got = vec![];
        while let Some(row) = cur.next_row().unwrap() {
            got.push(row[0]);
        }
        assert_eq!(got, (0..600).collect::<Vec<u32>>());
        // Exhausted cursor stays exhausted.
        assert!(cur.next_row().unwrap().is_none());
    }

    #[test]
    fn read_all_is_flat_row_major() {
        let pager = Pager::shared();
        let rows: Vec<Vec<u32>> = vec![vec![1, 2], vec![3, 4]];
        let f = HeapFile::from_rows(pager, 2, rows.iter().map(|r| r.as_slice())).unwrap();
        assert_eq!(f.read_all().unwrap(), vec![1, 2, 3, 4]);
    }
}
