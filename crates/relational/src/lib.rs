//! # setm-relational — the storage-engine substrate for SETM
//!
//! A small, single-threaded relational storage engine built for the
//! reproduction of *Houtsma & Swami, "Set-Oriented Mining for Association
//! Rules in Relational Databases" (ICDE 1995)*. The paper argues that
//! association-rule mining needs nothing beyond two database primitives —
//! **sorting** and **merge-scan join** — and prices every strategy in
//! 4 KiB-page accesses (10 ms sequential, 20 ms random). This crate
//! provides exactly that substrate, with the instrumentation needed to
//! check the paper's claims:
//!
//! * [`pager::Pager`] — a simulated disk that classifies every page access
//!   as sequential or random and prices it with the paper's cost model;
//! * [`heap::HeapFile`] — fixed-length-record relations;
//! * [`sort::external_sort`] — two-phase external merge sort;
//! * [`join::merge_scan_join`] / [`join::index_nested_loop_join`] — the
//!   Section 4 and Section 3 join strategies, respectively;
//! * [`btree::BTree`] — bulk-loaded key-only B+-trees matching the
//!   Section 3.2 index layout;
//! * [`agg::grouped_count`] — the `GROUP BY … HAVING COUNT(*) >= s` step;
//! * [`pool::BufferPool`] — a shared, weight-partitioned page cache that
//!   sharded parallel runs attach their pagers to (Design notes §11);
//! * [`engine::Database`] — a catalog tying it all together, with
//!   sort-order tracking across iterations (the Section 4.1 optimization).
//!
//! All values are `u32` integers, as in the paper ("each item and
//! transaction id is represented using 4 bytes").

pub mod agg;
pub mod btree;
pub mod engine;
pub mod errors;
pub mod heap;
pub mod join;
pub mod page;
pub mod pager;
pub mod pool;
pub mod schema;
pub mod sort;
pub mod tuple;

pub use engine::{Database, Index, Table};
pub use errors::{Error, Result};
pub use heap::{HeapFile, HeapFileBuilder};
pub use page::{Page, PAGE_SIZE};
pub use pager::{CostModel, FileId, IoStats, Pager, SharedPager};
pub use pool::{distribute_frames, split_frames_evenly, BufferPool, PoolHandle};
pub use schema::Schema;
pub use sort::{external_sort, SortOptions};
